"""Tests for leverage scores and the Principal Features Subspace method."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.linalg.leverage import (
    PrincipalFeaturesSubspace,
    leverage_score_distribution,
    leverage_scores,
    principal_features,
    rank_k_leverage_scores,
)


class TestLeverageScores:
    def test_scores_sum_to_rank(self, tall_matrix):
        scores = leverage_scores(tall_matrix)
        rank = np.linalg.matrix_rank(tall_matrix)
        assert scores.sum() == pytest.approx(rank, rel=1e-6)

    def test_scores_in_unit_interval(self, tall_matrix):
        scores = leverage_scores(tall_matrix)
        assert np.all(scores >= -1e-12)
        assert np.all(scores <= 1.0 + 1e-12)

    def test_identity_rows_have_unit_leverage(self):
        matrix = np.vstack([np.eye(3), np.zeros((5, 3))])
        scores = leverage_scores(matrix)
        np.testing.assert_allclose(scores[:3], 1.0, atol=1e-10)
        np.testing.assert_allclose(scores[3:], 0.0, atol=1e-10)

    def test_planted_important_row_gets_top_score(self, rng):
        base = rng.standard_normal((100, 5))
        base[17] = 50.0 * rng.standard_normal(5)
        # Row 17 dominates one direction of the column space entirely.
        scores = leverage_scores(base)
        assert np.argmax(scores) == 17

    def test_rank_k_scores(self, tall_matrix):
        scores = rank_k_leverage_scores(tall_matrix, rank=3)
        assert scores.shape == (tall_matrix.shape[0],)
        assert scores.sum() == pytest.approx(3.0, rel=1e-6)

    def test_rank_k_randomized_close_to_exact(self, tall_matrix):
        exact = rank_k_leverage_scores(tall_matrix, rank=5, method="exact")
        approx = rank_k_leverage_scores(
            tall_matrix, rank=5, method="randomized", random_state=0
        )
        # The top-ranked rows should largely agree.
        top_exact = set(np.argsort(exact)[::-1][:20].tolist())
        top_approx = set(np.argsort(approx)[::-1][:20].tolist())
        assert len(top_exact & top_approx) >= 15

    def test_rank_too_large_raises(self, tall_matrix):
        with pytest.raises(ValidationError):
            rank_k_leverage_scores(tall_matrix, rank=50)

    def test_invalid_method_raises(self, tall_matrix):
        with pytest.raises(ValidationError):
            rank_k_leverage_scores(tall_matrix, rank=2, method="bogus")

    def test_distribution_sums_to_one(self, tall_matrix):
        dist = leverage_score_distribution(tall_matrix)
        assert dist.sum() == pytest.approx(1.0)


class TestPrincipalFeatures:
    def test_returns_requested_count(self, tall_matrix):
        indices = principal_features(tall_matrix, n_features=10)
        assert indices.shape == (10,)
        assert len(set(indices.tolist())) == 10

    def test_sorted_by_descending_score(self, tall_matrix):
        scores = leverage_scores(tall_matrix)
        indices = principal_features(tall_matrix, n_features=10)
        selected_scores = scores[indices]
        assert np.all(np.diff(selected_scores) <= 1e-12)

    def test_too_many_features_raises(self, tall_matrix):
        with pytest.raises(ValidationError):
            principal_features(tall_matrix, n_features=tall_matrix.shape[0] + 1)


class TestPrincipalFeaturesSubspace:
    def test_fit_transform_shape(self, tall_matrix):
        selector = PrincipalFeaturesSubspace(n_features=15)
        reduced = selector.fit_transform(tall_matrix)
        assert reduced.shape == (15, tall_matrix.shape[1])

    def test_transform_uses_fitted_features(self, tall_matrix, rng):
        selector = PrincipalFeaturesSubspace(n_features=10).fit(tall_matrix)
        other = rng.standard_normal(tall_matrix.shape)
        reduced = selector.transform(other)
        np.testing.assert_allclose(reduced, other[selector.selected_indices_, :])

    def test_transform_before_fit_raises(self, tall_matrix):
        with pytest.raises(NotFittedError):
            PrincipalFeaturesSubspace(n_features=5).transform(tall_matrix)

    def test_selected_scores_property(self, tall_matrix):
        selector = PrincipalFeaturesSubspace(n_features=5).fit(tall_matrix)
        assert selector.selected_scores_.shape == (5,)
        assert np.all(np.diff(selector.selected_scores_) <= 1e-12)

    def test_transform_rejects_smaller_matrix(self, tall_matrix):
        selector = PrincipalFeaturesSubspace(n_features=5).fit(tall_matrix)
        with pytest.raises(ValidationError):
            selector.transform(tall_matrix[:3, :])

    def test_n_features_larger_than_rows_raises(self, tall_matrix):
        with pytest.raises(ValidationError):
            PrincipalFeaturesSubspace(n_features=10**6).fit(tall_matrix)

    def test_rank_restricted_selection(self, tall_matrix):
        selector = PrincipalFeaturesSubspace(n_features=10, rank=3).fit(tall_matrix)
        assert selector.selected_indices_.shape == (10,)
