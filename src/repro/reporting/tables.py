"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows the paper reports; these helpers
render them as aligned ASCII tables without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if not headers:
        raise ValidationError("headers must not be empty")
    formatted_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row {row!r} has {len(row)} cells but there are {len(headers)} headers"
            )
        formatted_rows.append(
            [
                float_format.format(cell) if isinstance(cell, (float, np.floating)) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted_rows)) if formatted_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    separator = "-+-".join("-" * w for w in widths)
    lines.append(header_line)
    lines.append(separator)
    for row in formatted_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_accuracy_matrix(
    accuracy: np.ndarray,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: Optional[str] = None,
    as_percent: bool = True,
) -> str:
    """Render a task-by-task accuracy matrix (the Figure 5 object) as text."""
    accuracy = np.asarray(accuracy, dtype=np.float64)
    if accuracy.ndim != 2:
        raise ValidationError("accuracy must be a 2-D matrix")
    if accuracy.shape != (len(row_labels), len(col_labels)):
        raise ValidationError(
            "accuracy shape does not match the provided labels "
            f"({accuracy.shape} vs {(len(row_labels), len(col_labels))})"
        )
    values = accuracy * 100.0 if as_percent else accuracy
    headers = ["de-anonymized \\ anonymous"] + list(col_labels)
    rows = []
    for label, row in zip(row_labels, values):
        rows.append([label] + [float(v) for v in row])
    return format_table(headers, rows, title=title, float_format="{:5.1f}")
