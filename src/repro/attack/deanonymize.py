"""The leverage-score de-anonymization attack.

This is the paper's primary contribution: restrict the connectome feature
space to the rows with the highest leverage scores of the *de-anonymized*
group matrix, then identify anonymous subjects by Pearson-correlation
matching in that reduced space (paper Figure 3, Sections 3.1.1-3.1.2).

Two attack objects are provided:

* :class:`LeverageScoreAttack` — the paper's method (Principal Features
  Subspace selection, deterministic top-``t``), with optional randomized
  sampling distributions for ablations.
* :class:`FullConnectomeBaseline` — the Finn-et-al-style baseline that
  matches on the entire vectorized connectome without feature selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.attack.matching import MatchResult, match_subjects
from repro.connectome.correlation import vector_index_to_region_pair
from repro.connectome.group import GroupMatrix
from repro.exceptions import AttackError, NotFittedError
from repro.linalg.leverage import PrincipalFeaturesSubspace
from repro.linalg.sampling import RowSampler
from repro.runtime.cache import ArtifactCache
from repro.utils.rng import RandomStateLike
from repro.utils.validation import check_positive_int


@dataclass
class LeverageScoreAttack:
    """De-anonymization by leverage-score feature selection + correlation matching.

    Parameters
    ----------
    n_features:
        Number of connectome features retained (the paper reduces 64 620
        features to fewer than 100).
    rank:
        Rank used when computing leverage scores; ``None`` uses the full
        column space of the reference group matrix.
    selection:
        ``"deterministic"`` for the Principal Features Subspace method (the
        paper's attack), or ``"leverage"`` / ``"l2"`` / ``"uniform"`` for the
        randomized row-sampling ablations.
    method:
        SVD backend for the leverage scores: ``"exact"`` or ``"randomized"``
        (the Halko-Martinsson-Tropp sketch; worthwhile for paper-scale and
        larger galleries, requires ``rank``).
    random_state:
        Seed for the randomized selection variants and the randomized SVD.
    cache:
        Optional :class:`~repro.runtime.cache.ArtifactCache`; when given, the
        deterministic fit routes its SVD factors and leverage scores through
        the ``svd``/``leverage`` artifact kinds, so refitting the same
        reference content is a cache hit.

    Attributes
    ----------
    selected_features_:
        Indices of the retained connectome features after :meth:`fit`.
    selector_:
        The fitted :class:`PrincipalFeaturesSubspace` (deterministic mode).
    """

    n_features: int = 100
    rank: Optional[int] = None
    selection: str = "deterministic"
    method: str = "exact"
    random_state: RandomStateLike = None
    cache: Optional[ArtifactCache] = field(default=None, repr=False)
    selected_features_: Optional[np.ndarray] = field(default=None, repr=False)
    selector_: Optional[PrincipalFeaturesSubspace] = field(default=None, repr=False)

    _VALID_SELECTIONS = ("deterministic", "leverage", "l2", "uniform")

    def fit(self, reference: GroupMatrix) -> "LeverageScoreAttack":
        """Select discriminative features from the de-anonymized group matrix."""
        check_positive_int(self.n_features, name="n_features")
        if self.selection not in self._VALID_SELECTIONS:
            raise AttackError(
                f"selection must be one of {self._VALID_SELECTIONS}, got {self.selection!r}"
            )
        if self.n_features > reference.n_features:
            raise AttackError(
                f"n_features ({self.n_features}) exceeds the connectome feature count "
                f"({reference.n_features})"
            )
        if self.selection == "deterministic":
            # Route through the gallery's cached factor helpers (a no-op
            # pass-through when no cache is configured); imported lazily to
            # keep the attack <-> gallery layers import-cycle free.
            from repro.gallery.factors import fit_principal_features_cached

            self.selector_ = fit_principal_features_cached(
                reference.data,
                n_features=self.n_features,
                rank=self.rank,
                method=self.method,
                random_state=self.random_state,
                cache=self.cache,
            )
            self.selected_features_ = self.selector_.selected_indices_
        else:
            sampler = RowSampler(
                n_rows=self.n_features,
                distribution=self.selection,
                rank=self.rank,
                rescale=False,
                random_state=self.random_state,
            )
            sampler.fit_sample(reference.data)
            # Randomized sampling may repeat rows; deduplicate while keeping order.
            _, first_positions = np.unique(sampler.sampled_indices_, return_index=True)
            self.selected_features_ = sampler.sampled_indices_[np.sort(first_positions)]
        self._reference = reference
        return self

    def identify(self, target: GroupMatrix, reference: Optional[GroupMatrix] = None) -> MatchResult:
        """Match anonymous target subjects against the reference subjects.

        Parameters
        ----------
        target:
            Anonymous group matrix sharing the reference's feature space.
        reference:
            Optionally override the reference group matrix used for matching
            (by default the one passed to :meth:`fit` is reused).
        """
        if self.selected_features_ is None:
            raise NotFittedError("LeverageScoreAttack must be fitted before identify()")
        reference = reference if reference is not None else self._reference
        if reference.n_features != target.n_features:
            raise AttackError(
                "reference and target group matrices must share the feature space"
            )
        features = self.selected_features_
        return match_subjects(
            reference.data[features, :],
            target.data[features, :],
            reference_subject_ids=reference.subject_ids,
            target_subject_ids=target.subject_ids,
        )

    def fit_identify(self, reference: GroupMatrix, target: GroupMatrix) -> MatchResult:
        """Fit on the reference dataset and identify the target dataset."""
        return self.fit(reference).identify(target)

    def signature_region_pairs(self, n_regions: int, top: Optional[int] = None) -> list:
        """Translate the selected features into ``(region_a, region_b)`` pairs.

        This is the "localized signature" output the paper highlights as the
        basis for targeted defenses.
        """
        if self.selected_features_ is None:
            raise NotFittedError("LeverageScoreAttack must be fitted first")
        indices = self.selected_features_ if top is None else self.selected_features_[:top]
        return [vector_index_to_region_pair(int(i), n_regions) for i in indices]


@dataclass
class FullConnectomeBaseline:
    """Whole-connectome correlation matching (no feature selection).

    This reproduces the Finn et al. style fingerprinting baseline the paper
    improves upon: every vectorized connectome feature participates in the
    match.
    """

    def fit(self, reference: GroupMatrix) -> "FullConnectomeBaseline":
        """Store the reference group matrix."""
        self._reference = reference
        return self

    def identify(self, target: GroupMatrix, reference: Optional[GroupMatrix] = None) -> MatchResult:
        """Match the target dataset on the full feature space."""
        reference = reference if reference is not None else getattr(self, "_reference", None)
        if reference is None:
            raise NotFittedError("FullConnectomeBaseline must be fitted before identify()")
        return match_subjects(
            reference.data,
            target.data,
            reference_subject_ids=reference.subject_ids,
            target_subject_ids=target.subject_ids,
        )

    def fit_identify(self, reference: GroupMatrix, target: GroupMatrix) -> MatchResult:
        """Fit and identify in one call."""
        return self.fit(reference).identify(target)
