"""Attack evaluation harnesses.

These helpers wrap the attack objects into the evaluation protocols the paper
reports: single-pair identification accuracy, cross-task identification
matrices (Figure 5), and repeated train/test identification with summary
statistics (the ADHD and multi-site experiments).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.attack.deanonymize import LeverageScoreAttack
from repro.attack.matching import MatchResult
from repro.connectome.group import GroupMatrix
from repro.exceptions import AttackError, ValidationError
from repro.ml.model_selection import train_test_split
from repro.utils.rng import RandomStateLike, as_rng
from repro.utils.stats import summarize


def evaluate_identification(
    reference: GroupMatrix,
    target: GroupMatrix,
    n_features: int = 100,
    rank: Optional[int] = None,
    selection: str = "deterministic",
    random_state: RandomStateLike = None,
) -> MatchResult:
    """Fit a leverage-score attack on ``reference`` and identify ``target``.

    The deterministic (paper) selection goes through the gallery layer, so
    the fit is served from the artifact cache when this reference was seen
    before; the randomized selection ablations keep the direct attack path.
    """
    if selection == "deterministic":
        from repro.gallery.reference import ReferenceGallery

        gallery = ReferenceGallery(
            reference, n_features=n_features, rank=rank, random_state=random_state
        )
        return gallery.identify_group(target)
    attack = LeverageScoreAttack(
        n_features=n_features, rank=rank, selection=selection, random_state=random_state
    )
    return attack.fit_identify(reference, target)


def cross_task_identification_matrix(
    reference_groups: Dict[str, GroupMatrix],
    target_groups: Dict[str, GroupMatrix],
    n_features: int = 100,
    rank: Optional[int] = None,
) -> Dict[str, object]:
    """The Figure 5 experiment: identification accuracy for every task pair.

    Parameters
    ----------
    reference_groups:
        Task name → de-anonymized group matrix (e.g. the L-R encodings).
    target_groups:
        Task name → anonymous group matrix (e.g. the R-L encodings).
    n_features / rank:
        Leverage-score attack parameters.

    Returns
    -------
    dict
        ``accuracy`` is a ``(n_reference_tasks, n_target_tasks)`` array,
        ``reference_tasks`` / ``target_tasks`` give the row/column ordering.
        Rows are the de-anonymized datasets (the paper's convention).
    """
    if not reference_groups or not target_groups:
        raise AttackError("both group dictionaries must be non-empty")
    from repro.gallery.reference import ReferenceGallery

    reference_tasks = list(reference_groups)
    target_tasks = list(target_groups)
    accuracy = np.zeros((len(reference_tasks), len(target_tasks)))

    for row, reference_task in enumerate(reference_tasks):
        # One fitted gallery per de-anonymized task, identified against
        # every anonymous task — the fit runs (at most) once per row.
        gallery = ReferenceGallery(
            reference_groups[reference_task], n_features=n_features, rank=rank
        )
        for col, target_task in enumerate(target_tasks):
            result = gallery.identify_group(target_groups[target_task])
            accuracy[row, col] = result.accuracy()
    return {
        "accuracy": accuracy,
        "reference_tasks": reference_tasks,
        "target_tasks": target_tasks,
    }


def repeated_identification(
    reference: GroupMatrix,
    target: GroupMatrix,
    n_features: int = 100,
    n_repetitions: int = 10,
    train_fraction: float = 0.5,
    random_state: RandomStateLike = None,
) -> Dict[str, float]:
    """Train/test identification protocol used for the ADHD-200 experiments.

    In each repetition the cohort is split into train and test subjects; the
    leverage scores are computed on the train subjects' reference scans only,
    and the identification accuracy is measured on the held-out test
    subjects.  This mirrors the paper's "divide the subjects into train and
    test sets, and pick features that correspond to the highest leverage
    scores of the train matrix" protocol.
    """
    if reference.n_scans != target.n_scans:
        raise ValidationError(
            "reference and target must contain the same subjects in the same order"
        )
    if reference.subject_ids != target.subject_ids:
        raise ValidationError("reference and target subject orderings must match")
    if not 0.0 < train_fraction < 1.0:
        raise ValidationError("train_fraction must be in (0, 1)")
    rng = as_rng(random_state)
    accuracies: List[float] = []
    for _ in range(n_repetitions):
        train_idx, test_idx = train_test_split(
            reference.n_scans, test_fraction=1.0 - train_fraction, random_state=rng
        )
        train_reference = reference.select_columns(train_idx)
        n_features_effective = min(n_features, train_reference.n_features)
        attack = LeverageScoreAttack(n_features=n_features_effective).fit(train_reference)

        test_reference = reference.select_columns(test_idx)
        test_target = target.select_columns(test_idx)
        result = attack.identify(test_target, reference=test_reference)
        accuracies.append(result.accuracy())
    mean, std = summarize(np.asarray(accuracies))
    return {
        "accuracy_mean": mean,
        "accuracy_std": std,
        "n_repetitions": float(n_repetitions),
        "accuracies": accuracies,
    }
