"""Tests for the SVR task-performance inference attack."""

import numpy as np
import pytest

from repro.attack.performance_inference import PerformanceInferenceAttack
from repro.exceptions import AttackError, ValidationError


@pytest.fixture(scope="module")
def language_data():
    from repro.datasets.hcp import HCPLikeDataset

    dataset = HCPLikeDataset(n_subjects=24, n_regions=60, n_timepoints=150, random_state=2)
    group = dataset.group_matrix("LANGUAGE", encoding="LR", day=1)
    performance = dataset.performance_table("LANGUAGE")
    return group, performance


class TestPerformanceInferenceAttack:
    def test_run_once_returns_errors_and_indices(self, language_data):
        group, performance = language_data
        attack = PerformanceInferenceAttack(n_features=200, random_state=0)
        result = attack.run_once(group, performance, random_state=0)
        assert result.train_nrmse_percent >= 0
        assert result.test_nrmse_percent >= 0
        assert len(result.test_indices) == len(result.predictions)

    def test_prediction_beats_mean_predictor(self, language_data):
        group, performance = language_data
        attack = PerformanceInferenceAttack(n_features=250, random_state=0)
        summary = attack.run(group, performance, n_repetitions=5)
        # A mean predictor has nRMSE(mean) around std/mean of the metric.
        mean_predictor_nrmse = 100.0 * performance.std() / performance.mean()
        assert summary["test_nrmse_mean"] < mean_predictor_nrmse

    def test_train_error_not_larger_than_test_error(self, language_data):
        group, performance = language_data
        attack = PerformanceInferenceAttack(n_features=200, random_state=1)
        summary = attack.run(group, performance, n_repetitions=5)
        assert summary["train_nrmse_mean"] <= summary["test_nrmse_mean"] + 1.0

    def test_kernel_ridge_variant_runs(self, language_data):
        group, performance = language_data
        attack = PerformanceInferenceAttack(
            n_features=150, regressor="kernel_ridge", random_state=0
        )
        result = attack.run_once(group, performance, random_state=0)
        assert np.isfinite(result.test_nrmse_percent)

    def test_invalid_regressor_raises(self, language_data):
        group, performance = language_data
        attack = PerformanceInferenceAttack(regressor="random_forest")
        with pytest.raises(AttackError):
            attack.run_once(group, performance, random_state=0)

    def test_performance_length_mismatch_raises(self, language_data):
        group, performance = language_data
        attack = PerformanceInferenceAttack()
        with pytest.raises(ValidationError):
            attack.run_once(group, performance[:-2], random_state=0)

    def test_invalid_repetitions_raises(self, language_data):
        group, performance = language_data
        with pytest.raises(ValidationError):
            PerformanceInferenceAttack().run(group, performance, n_repetitions=0)

    def test_summary_keys(self, language_data):
        group, performance = language_data
        summary = PerformanceInferenceAttack(n_features=100, random_state=3).run(
            group, performance, n_repetitions=2
        )
        for key in (
            "train_nrmse_mean",
            "train_nrmse_std",
            "test_nrmse_mean",
            "test_nrmse_std",
            "n_repetitions",
        ):
            assert key in summary
