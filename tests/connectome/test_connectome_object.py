"""Tests for the Connectome object."""

import networkx as nx
import numpy as np
import pytest

from repro.connectome.connectome import Connectome
from repro.exceptions import ValidationError


@pytest.fixture()
def connectome(rng):
    ts = rng.standard_normal((10, 120))
    return Connectome.from_timeseries(ts, subject_id="sub-1", task="REST", session="LR")


class TestConnectome:
    def test_from_timeseries_properties(self, connectome):
        assert connectome.n_regions == 10
        assert connectome.n_features == 45
        assert connectome.subject_id == "sub-1"
        assert connectome.task == "REST"

    def test_vectorize_length(self, connectome):
        assert connectome.vectorize().shape == (45,)

    def test_rejects_empty_subject_id(self, rng):
        with pytest.raises(ValidationError):
            Connectome(matrix=np.eye(4), subject_id="")

    def test_rejects_asymmetric_matrix(self, rng):
        with pytest.raises(ValidationError):
            Connectome(matrix=rng.standard_normal((4, 4)), subject_id="s")

    def test_graph_view_complete(self, connectome):
        graph = connectome.to_graph()
        assert isinstance(graph, nx.Graph)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 45

    def test_graph_threshold_drops_weak_edges(self, connectome):
        full = connectome.to_graph()
        sparse = connectome.to_graph(threshold=0.5)
        assert sparse.number_of_edges() <= full.number_of_edges()

    def test_graph_edge_weights_match_matrix(self, connectome):
        graph = connectome.to_graph()
        weight = graph[0][1]["weight"]
        assert weight == pytest.approx(connectome.matrix[0, 1])

    def test_strongest_edges_sorted(self, connectome):
        edges = connectome.strongest_edges(k=5)
        strengths = [abs(w) for _, _, w in edges]
        assert strengths == sorted(strengths, reverse=True)

    def test_strongest_edges_invalid_k(self, connectome):
        with pytest.raises(ValidationError):
            connectome.strongest_edges(k=0)

    def test_label_contains_provenance(self, connectome):
        label = connectome.label()
        assert "sub-1" in label and "REST" in label and "LR" in label
