"""Classification and regression metrics.

Only the metrics the experiments need are implemented, but they follow the
conventional definitions so results are comparable with standard tooling.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.stats import normalized_rmse
from repro.utils.validation import check_array, check_same_length


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exactly matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    if y_true.size == 0:
        raise ValidationError("cannot compute accuracy of empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Optional[Sequence] = None
) -> Tuple[np.ndarray, list]:
    """Confusion matrix and the label ordering used for its rows/columns.

    Rows are true labels, columns are predictions.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    labels = list(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for truth, prediction in zip(y_true.tolist(), y_pred.tolist()):
        if truth not in index or prediction not in index:
            raise ValidationError(
                f"label {truth!r} or {prediction!r} not present in the provided labels"
            )
        matrix[index[truth], index[prediction]] += 1
    return matrix, labels


def mean_squared_error(y_true: Sequence, y_pred: Sequence) -> float:
    """Mean squared error."""
    y_true = check_array(y_true, name="y_true", ndim=1)
    y_pred = check_array(y_pred, name="y_pred", ndim=1)
    check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true: Sequence, y_pred: Sequence) -> float:
    """Mean absolute error."""
    y_true = check_array(y_true, name="y_true", ndim=1)
    y_pred = check_array(y_pred, name="y_pred", ndim=1)
    check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Coefficient of determination R^2."""
    y_true = check_array(y_true, name="y_true", ndim=1)
    y_pred = check_array(y_pred, name="y_pred", ndim=1)
    check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total < 1e-15:
        return 0.0 if residual < 1e-15 else -np.inf
    return 1.0 - residual / total


def nrmse_percent(
    y_true: Sequence, y_pred: Sequence, normalization: str = "range"
) -> float:
    """Normalized RMSE expressed as a percentage (the paper's Table 1 metric)."""
    return 100.0 * normalized_rmse(
        np.asarray(y_true, dtype=np.float64),
        np.asarray(y_pred, dtype=np.float64),
        normalization=normalization,
    )


def top_k_accuracy(scores: np.ndarray, true_indices: Sequence[int], k: int = 1) -> float:
    """Top-``k`` accuracy from a score matrix.

    ``scores[i, j]`` is the score of candidate ``j`` for query ``i``;
    ``true_indices[i]`` is the index of the correct candidate.
    """
    scores = check_array(scores, name="scores", ndim=2)
    true_indices = np.asarray(true_indices, dtype=int)
    if scores.shape[0] != true_indices.shape[0]:
        raise ValidationError("scores and true_indices must agree on the query count")
    if not 1 <= k <= scores.shape[1]:
        raise ValidationError(f"k must be in [1, {scores.shape[1]}], got {k}")
    top_k = np.argsort(-scores, axis=1)[:, :k]
    hits = np.any(top_k == true_indices[:, None], axis=1)
    return float(np.mean(hits))
