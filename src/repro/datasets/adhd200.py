"""ADHD-200-like cohort generator.

The ADHD-200 release (INDI) contains resting-state scans of children and
adolescents — ADHD cases of several subtypes and healthy controls — acquired
at eight different imaging sites and parcellated with the AAL2 atlas (116
regions, 6 670 connectome features).  The paper shows the brain signature
survives all of these differences (Section 3.3.4, Figures 7-9).

The generator reuses the same latent subject model as the HCP-like cohort but
adds a subtype-shared loading component and per-site acquisition effects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.connectome.group import GroupMatrix
from repro.datasets.base import CohortDataset, ScanRecord
from repro.datasets.subject import SubjectPopulation, _derive_seed
from repro.datasets.tasks import TaskDefinition
from repro.exceptions import DatasetError
from repro.imaging.acquisition import SiteProfile
from repro.utils.rng import RandomStateLike, as_rng
from repro.utils.validation import check_positive_int

#: Diagnostic groups present in ADHD-200.  Subtype 2 is rare in the real
#: release and the paper only shows subtypes 1 and 3, but all three are
#: supported.
ADHD_SUBTYPES = ("control", "adhd_subtype_1", "adhd_subtype_2", "adhd_subtype_3")

#: A resting-state-only "task": ADHD-200 contains no task fMRI.
_REST_TASK = TaskDefinition(
    name="REST", subject_expression=1.0, task_amplitude=0.0, active_fraction=1.0
)

#: The eight consortium sites of the real release.
DEFAULT_SITES = (
    "Peking",
    "KKI",
    "NeuroIMAGE",
    "NYU",
    "OHSU",
    "Pittsburgh",
    "WashU",
    "Brown",
)


class ADHD200LikeDataset(CohortDataset):
    """Synthetic stand-in for the ADHD-200 multi-site clinical cohort.

    Parameters
    ----------
    n_cases:
        Number of ADHD subjects (split across subtypes 1-3).
    n_controls:
        Number of typically developing controls.
    n_regions:
        Atlas granularity (116 regions reproduces the paper's 6 670 features).
    n_timepoints:
        Frames per run (ADHD-200 scans are shorter than HCP runs).
    tr:
        Repetition time in seconds (2.0 s is typical for the consortium).
    subtype_strength:
        Amplitude of the subtype-shared connectivity component.
    sites:
        Site names; subjects are assigned round-robin.
    site_variability:
        Scale of per-site gain/offset/noise differences.
    random_state:
        Base seed.
    population_kwargs:
        Extra arguments forwarded to :class:`SubjectPopulation`.
    """

    def __init__(
        self,
        n_cases: int = 40,
        n_controls: int = 40,
        n_regions: int = 116,
        n_timepoints: int = 150,
        tr: float = 2.0,
        subtype_strength: float = 0.35,
        sites: Sequence[str] = DEFAULT_SITES,
        site_variability: float = 0.05,
        random_state: RandomStateLike = 0,
        **population_kwargs,
    ):
        self.n_cases = check_positive_int(n_cases, name="n_cases")
        self.n_controls = check_positive_int(n_controls, name="n_controls")
        self.n_subjects = self.n_cases + self.n_controls
        self.n_regions = check_positive_int(n_regions, name="n_regions", minimum=8)
        self.n_timepoints = check_positive_int(n_timepoints, name="n_timepoints", minimum=32)
        if tr <= 0:
            raise DatasetError(f"tr must be positive, got {tr}")
        self.tr = float(tr)
        if subtype_strength < 0:
            raise DatasetError("subtype_strength must be non-negative")
        self.subtype_strength = float(subtype_strength)
        if not sites:
            raise DatasetError("at least one site is required")
        self.sites = list(sites)
        if site_variability < 0:
            raise DatasetError("site_variability must be non-negative")
        self.site_variability = float(site_variability)

        # Paediatric clinical scans are noisier than HCP research scans
        # (more head motion, shorter runs, heterogeneous scanners), so the
        # population defaults are degraded unless the caller overrides them.
        population_kwargs.setdefault("measurement_noise_std", 1.1)
        population_kwargs.setdefault("session_jitter", 0.28)
        self.population = SubjectPopulation(
            n_subjects=self.n_subjects,
            n_regions=self.n_regions,
            subject_prefix="adhd",
            random_state=random_state,
            **population_kwargs,
        )
        base_rng = as_rng(random_state)
        self._base_seed = int(base_rng.integers(0, 2**31 - 1))
        self._assign_diagnoses()
        self._assign_sites()
        self._build_site_profiles()

    # ------------------------------------------------------------------ #
    # Cohort structure
    # ------------------------------------------------------------------ #
    def _assign_diagnoses(self) -> None:
        """Assign clinical labels and attach subtype-shared loadings."""
        case_subtypes = ("adhd_subtype_1", "adhd_subtype_2", "adhd_subtype_3")
        self.diagnoses: List[str] = []
        scale = self.subtype_strength / np.sqrt(self.population.n_subject_factors)
        subtype_loadings: Dict[str, np.ndarray] = {}
        for subtype in case_subtypes:
            rng = np.random.default_rng(_derive_seed(self._base_seed, "subtype", subtype))
            subtype_loadings[subtype] = (
                rng.standard_normal(
                    (self.n_regions, self.population.n_subject_factors)
                )
                * scale
            )
        for index in range(self.n_subjects):
            if index < self.n_cases:
                subtype = case_subtypes[index % len(case_subtypes)]
                self.population.subject(index).group_loading = subtype_loadings[subtype]
            else:
                subtype = "control"
            self.diagnoses.append(subtype)

    def _assign_sites(self) -> None:
        """Round-robin site assignment (each subject keeps their site)."""
        self.subject_sites: List[str] = [
            self.sites[index % len(self.sites)] for index in range(self.n_subjects)
        ]

    def _build_site_profiles(self) -> None:
        """Per-site gain/offset/noise profiles of modest magnitude."""
        self.site_profiles: Dict[str, SiteProfile] = {}
        for position, site in enumerate(self.sites):
            rng = np.random.default_rng(_derive_seed(self._base_seed, "site", site))
            self.site_profiles[site] = SiteProfile(
                site_id=site,
                gain=1.0 + self.site_variability * float(rng.uniform(-1.0, 1.0)),
                offset=self.site_variability * float(rng.uniform(-1.0, 1.0)),
                extra_noise_std=self.site_variability * float(rng.uniform(0.0, 1.0)),
            )

    def subject_ids(self) -> List[str]:
        """Identifiers of all subjects (cases first, then controls)."""
        return self.population.subject_ids()

    def indices_for_diagnosis(self, diagnosis: str) -> List[int]:
        """Subject indices carrying the given diagnostic label."""
        if diagnosis not in ADHD_SUBTYPES:
            raise DatasetError(
                f"diagnosis must be one of {ADHD_SUBTYPES}, got {diagnosis!r}"
            )
        return [i for i, d in enumerate(self.diagnoses) if d == diagnosis]

    # ------------------------------------------------------------------ #
    # Scan generation
    # ------------------------------------------------------------------ #
    def generate_scan(self, subject_index: int, session: int = 1) -> ScanRecord:
        """Generate one resting-state scan for one subject."""
        if session not in (1, 2):
            raise DatasetError(f"session must be 1 or 2, got {session}")
        session_label = f"SESSION{session}"
        timeseries = self.population.generate_timeseries(
            subject_index=subject_index,
            task=_REST_TASK,
            session=session_label,
            n_timepoints=self.n_timepoints,
            tr=self.tr,
        )
        site = self.subject_sites[subject_index]
        profile = self.site_profiles[site]
        site_rng = np.random.default_rng(
            _derive_seed(self._base_seed, "site-noise", subject_index, session)
        )
        timeseries = profile.apply(timeseries, random_state=site_rng)
        subject = self.population.subject(subject_index)
        return ScanRecord(
            subject_id=subject.subject_id,
            task="REST",
            session=session_label,
            timeseries=timeseries,
            site=site,
            diagnosis=self.diagnoses[subject_index],
        )

    def generate_session(
        self, session: int = 1, subject_indices: Optional[Sequence[int]] = None
    ) -> List[ScanRecord]:
        """Generate a full session, optionally restricted to a subject subset."""
        indices = (
            list(range(self.n_subjects)) if subject_indices is None else list(subject_indices)
        )
        return [self.generate_scan(i, session=session) for i in indices]

    def session_pair(
        self, subject_indices: Optional[Sequence[int]] = None, fisher: bool = False
    ) -> Dict[str, GroupMatrix]:
        """The two-session pair used in the identification experiments."""
        return {
            "reference": self.scans_to_group_matrix(
                self.generate_session(1, subject_indices), fisher=fisher
            ),
            "target": self.scans_to_group_matrix(
                self.generate_session(2, subject_indices), fisher=fisher
            ),
        }

    def subtype_session_pair(
        self, diagnosis: str, fisher: bool = False
    ) -> Dict[str, GroupMatrix]:
        """Two-session pair restricted to one diagnostic group (Figures 7/8)."""
        indices = self.indices_for_diagnosis(diagnosis)
        if not indices:
            raise DatasetError(f"no subjects with diagnosis {diagnosis!r}")
        return self.session_pair(subject_indices=indices, fisher=fisher)
