"""Identification experiments: Figure 5, Figure 9, and Table 2."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.attack.evaluation import (
    cross_task_identification_matrix,
    evaluate_identification,
    repeated_identification,
)
from repro.datasets.adhd200 import ADHD200LikeDataset
from repro.datasets.hcp import HCPLikeDataset
from repro.datasets.multisite import simulate_multisite_session
from repro.experiments.config import ADHDExperimentConfig, HCPExperimentConfig
from repro.gallery.reference import ReferenceGallery
from repro.reporting.experiment import ExperimentRecord
from repro.utils.rng import as_rng


def figure5_cross_task_matrix(
    config: Optional[HCPExperimentConfig] = None,
    tasks: Optional[List[str]] = None,
) -> ExperimentRecord:
    """Figure 5: cross-task identification-accuracy matrix.

    Rows are de-anonymized datasets (L-R encodings), columns are anonymous
    datasets (R-L encodings).  The paper's shape claims checked here:

    * rest→rest identification is the strongest cell (> 94 % in the paper),
    * language and relational processing stay strong (> 90 %),
    * motor and working-memory are the weakest conditions,
    * the matrix is asymmetric.
    """
    config = config or HCPExperimentConfig()
    dataset = HCPLikeDataset(
        n_subjects=config.n_subjects,
        n_regions=config.n_regions,
        n_timepoints=config.n_timepoints,
        random_state=config.seed,
    )
    tasks = tasks or dataset.task_names()

    reference_groups = {
        task: dataset.group_matrix(task, encoding="LR", day=1) for task in tasks
    }
    target_groups = {
        task: dataset.group_matrix(task, encoding="RL", day=2) for task in tasks
    }
    outcome = cross_task_identification_matrix(
        reference_groups, target_groups, n_features=config.n_features
    )
    accuracy = outcome["accuracy"]
    task_index = {task: i for i, task in enumerate(tasks)}

    record = ExperimentRecord(
        experiment_id="figure5",
        title="Identifiability of subjects across tasks",
        configuration={**config.as_dict(), "tasks": tasks},
        metrics={
            "rest_to_rest": float(accuracy[task_index["REST"], task_index["REST"]])
            if "REST" in task_index
            else float("nan"),
            "mean_accuracy": float(accuracy.mean()),
        },
        arrays={"accuracy": accuracy},
    )

    if "REST" in task_index:
        rest_accuracy = accuracy[task_index["REST"], task_index["REST"]]
        record.add_comparison(
            description="rest -> rest identification accuracy",
            paper_value="> 94 %",
            measured_value=f"{100.0 * rest_accuracy:.1f} %",
            matches_shape=rest_accuracy >= 0.90,
        )
    strong_tasks = [t for t in ("LANGUAGE", "RELATIONAL") if t in task_index]
    weak_tasks = [t for t in ("MOTOR", "WM") if t in task_index]
    if strong_tasks and weak_tasks:
        strong = np.mean(
            [accuracy[task_index[t], task_index[t]] for t in strong_tasks]
        )
        weak = np.mean([accuracy[task_index[t], task_index[t]] for t in weak_tasks])
        record.metrics["strong_task_accuracy"] = float(strong)
        record.metrics["weak_task_accuracy"] = float(weak)
        record.add_comparison(
            description="language/relational are much more identifying than motor/WM",
            paper_value="language, relational > 90 %; motor, WM ineffective",
            measured_value=f"strong {100 * strong:.1f} % vs weak {100 * weak:.1f} %",
            matches_shape=strong > weak,
        )
    if "REST" in task_index:
        rest_row = np.delete(accuracy[task_index["REST"], :], task_index["REST"]).mean()
        weak_rows = (
            np.mean(
                [
                    np.delete(accuracy[task_index[t], :], task_index[t]).mean()
                    for t in weak_tasks
                ]
            )
            if weak_tasks
            else float("nan")
        )
        record.metrics["rest_row_mean"] = float(rest_row)
        record.add_comparison(
            description="de-anonymizing rest compromises other tasks more than motor/WM do",
            paper_value="rest row strong; motor/WM rows weak (matrix asymmetric)",
            measured_value=f"rest row {100 * rest_row:.1f} % vs weak rows {100 * weak_rows:.1f} %",
            matches_shape=bool(rest_row > weak_rows),
        )
    asymmetry = float(np.abs(accuracy - accuracy.T).max())
    record.metrics["max_asymmetry"] = asymmetry
    record.add_comparison(
        description="the accuracy matrix is asymmetric",
        paper_value="matrix clearly asymmetric",
        measured_value=f"max |A - A^T| = {100 * asymmetry:.1f} percentage points",
        matches_shape=asymmetry > 0.0,
    )
    return record


def figure9_adhd_identification(
    config: Optional[ADHDExperimentConfig] = None,
) -> ExperimentRecord:
    """Figure 9 and Section 3.3.4: identification of the full ADHD-200 cohort."""
    config = config or ADHDExperimentConfig()
    dataset = ADHD200LikeDataset(
        n_cases=config.n_cases,
        n_controls=config.n_controls,
        n_regions=config.n_regions,
        n_timepoints=config.n_timepoints,
        random_state=config.seed,
    )
    pair = dataset.session_pair()

    # Train/test protocol (97.2 +- 0.9 % in the paper).
    train_test = repeated_identification(
        pair["reference"],
        pair["target"],
        n_features=config.n_features,
        n_repetitions=config.identification_repetitions,
        train_fraction=config.train_fraction,
        random_state=config.seed,
    )
    # Full-cohort (cases + controls) matching (94.12 +- 3.4 % in the paper).
    full_result = evaluate_identification(
        pair["reference"], pair["target"], n_features=config.n_features
    )

    record = ExperimentRecord(
        experiment_id="figure9",
        title="Identification of ADHD-200 subjects (cases and controls)",
        configuration=config.as_dict(),
        metrics={
            "train_test_accuracy_mean": train_test["accuracy_mean"],
            "train_test_accuracy_std": train_test["accuracy_std"],
            "full_cohort_accuracy": full_result.accuracy(),
        },
        arrays={"similarity": full_result.similarity},
    )
    record.add_comparison(
        description="held-out test accuracy with train-set leverage features",
        paper_value="97.2 +- 0.9 %",
        measured_value=(
            f"{100 * train_test['accuracy_mean']:.1f} +- "
            f"{100 * train_test['accuracy_std']:.1f} %"
        ),
        matches_shape=train_test["accuracy_mean"] >= 0.85,
    )
    record.add_comparison(
        description="full cohort (cases + controls) identification accuracy",
        paper_value="94.12 +- 3.4 %",
        measured_value=f"{100 * full_result.accuracy():.1f} %",
        matches_shape=full_result.accuracy() >= 0.85,
    )
    return record


def table2_multisite_noise(
    hcp_config: Optional[HCPExperimentConfig] = None,
    adhd_config: Optional[ADHDExperimentConfig] = None,
) -> ExperimentRecord:
    """Table 2: identification accuracy under simulated multi-site acquisition."""
    hcp_config = hcp_config or HCPExperimentConfig()
    adhd_config = adhd_config or ADHDExperimentConfig()

    hcp = HCPLikeDataset(
        n_subjects=hcp_config.n_subjects,
        n_regions=hcp_config.n_regions,
        n_timepoints=hcp_config.multisite_n_timepoints,
        random_state=hcp_config.seed,
    )
    adhd = ADHD200LikeDataset(
        n_cases=adhd_config.n_cases,
        n_controls=adhd_config.n_controls,
        n_regions=adhd_config.n_regions,
        n_timepoints=adhd_config.n_timepoints,
        random_state=adhd_config.seed,
    )

    hcp_reference_scans = hcp.generate_session("REST", encoding="LR", day=1)
    hcp_target_scans = hcp.generate_session("REST", encoding="RL", day=2)
    adhd_reference_scans = adhd.generate_session(1)
    adhd_target_scans = adhd.generate_session(2)

    hcp_reference = hcp.scans_to_group_matrix(hcp_reference_scans)
    adhd_reference = adhd.scans_to_group_matrix(adhd_reference_scans)

    # The attacker's references are fixed across every noise level and
    # repetition — fit each gallery once and identify all noisy targets
    # against it instead of re-running the SVD per cell.
    hcp_gallery = ReferenceGallery(hcp_reference, n_features=hcp_config.n_features)
    adhd_gallery = ReferenceGallery(adhd_reference, n_features=adhd_config.n_features)

    noise_levels = list(hcp_config.multisite_noise_levels)
    rng = as_rng(hcp_config.seed)
    hcp_rows: List[Dict[str, float]] = []
    adhd_rows: List[Dict[str, float]] = []

    for level in noise_levels:
        hcp_accuracies = []
        adhd_accuracies = []
        for _ in range(hcp_config.multisite_repetitions):
            noisy_hcp_scans = simulate_multisite_session(
                hcp_target_scans, noise_variance_fraction=level, random_state=rng
            )
            noisy_adhd_scans = simulate_multisite_session(
                adhd_target_scans, noise_variance_fraction=level, random_state=rng
            )
            hcp_target = hcp.scans_to_group_matrix(noisy_hcp_scans)
            adhd_target = adhd.scans_to_group_matrix(noisy_adhd_scans)
            hcp_accuracies.append(hcp_gallery.identify_group(hcp_target).accuracy())
            adhd_accuracies.append(adhd_gallery.identify_group(adhd_target).accuracy())
        hcp_rows.append(
            {"noise": level, "mean": float(np.mean(hcp_accuracies)), "std": float(np.std(hcp_accuracies))}
        )
        adhd_rows.append(
            {"noise": level, "mean": float(np.mean(adhd_accuracies)), "std": float(np.std(adhd_accuracies))}
        )

    hcp_means = np.asarray([row["mean"] for row in hcp_rows])
    adhd_means = np.asarray([row["mean"] for row in adhd_rows])

    record = ExperimentRecord(
        experiment_id="table2",
        title="Identification accuracy under simulated multi-site acquisition",
        configuration={
            "hcp": hcp_config.as_dict(),
            "adhd": adhd_config.as_dict(),
        },
        metrics={
            f"hcp_accuracy_at_{int(row['noise'] * 100)}pct": row["mean"] for row in hcp_rows
        },
        arrays={
            "noise_levels": np.asarray(noise_levels),
            "hcp_accuracy": hcp_means,
            "adhd_accuracy": adhd_means,
        },
    )
    for row in adhd_rows:
        record.metrics[f"adhd_accuracy_at_{int(row['noise'] * 100)}pct"] = row["mean"]

    record.add_comparison(
        description="HCP accuracy at 10 % noise stays high",
        paper_value="91.14 +- 1.15 %",
        measured_value=f"{100 * hcp_means[0]:.1f} %",
        matches_shape=hcp_means[0] >= 0.80,
    )
    record.add_comparison(
        description="accuracy decreases monotonically with noise (HCP)",
        paper_value="91.1 -> 86.7 -> 79.1 %",
        measured_value=" -> ".join(f"{100 * v:.1f}" for v in hcp_means),
        matches_shape=bool(np.all(np.diff(hcp_means) <= 1e-9)),
    )
    record.add_comparison(
        description="accuracy decreases monotonically with noise (ADHD-200)",
        paper_value="96.3 -> 89.2 -> 84.1 %",
        measured_value=" -> ".join(f"{100 * v:.1f}" for v in adhd_means),
        matches_shape=bool(np.all(np.diff(adhd_means) <= 1e-9)),
    )
    return record
