"""Serving layer: the typed public API of the identification system.

This package is the recommended entrypoint for consuming the attack as a
service (datasets → gallery → service):

``messages``
    Typed request/response dataclasses (:class:`IdentifyRequest`,
    :class:`IdentifyResponse`, :class:`EnrollRequest`,
    :class:`EnrollResponse`, :class:`ServiceStats`) with JSON round-trip.
``config``
    :class:`ServiceConfig` — every cache/shard/worker/batching knob of a
    deployment in one validated, serializable object.
``registry``
    :class:`GalleryRegistry` — named, persistable
    :class:`~repro.gallery.reference.ReferenceGallery` instances sharing one
    artifact cache and runner pool.
``service``
    :class:`IdentificationService` — sync and ``asyncio`` identification,
    with the async path micro-batching concurrent requests into one stacked
    sharded match (bit-identical to serial identifies).
``http``
    :class:`HttpServiceServer` / :class:`ServiceClient` — a stdlib-asyncio
    HTTP front end over ``identify_async`` (``POST /identify``,
    ``POST /enroll``, ``GET /stats``, ``GET /healthz``) whose responses are
    bit-identical to in-process identifies, plus the blocking client.
"""

from repro.service.config import ServiceConfig
from repro.service.messages import (
    EnrollRequest,
    EnrollResponse,
    IdentifyRequest,
    IdentifyResponse,
    ServiceStats,
)
from repro.service.registry import GalleryRegistry
from repro.service.service import IdentificationService
from repro.service.http import (
    BackgroundHttpServer,
    HttpServiceError,
    HttpServiceServer,
    ServiceClient,
)

__all__ = [
    "ServiceConfig",
    "EnrollRequest",
    "EnrollResponse",
    "IdentifyRequest",
    "IdentifyResponse",
    "ServiceStats",
    "GalleryRegistry",
    "IdentificationService",
    "BackgroundHttpServer",
    "HttpServiceError",
    "HttpServiceServer",
    "ServiceClient",
]
