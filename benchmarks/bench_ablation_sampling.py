"""Ablation: feature-selection strategy.

Compares the paper's deterministic top-leverage selection against randomized
leverage sampling, l2-norm sampling, uniform sampling, and the
whole-connectome baseline on the resting-state identification task.
"""

from conftest import run_once

from repro.attack import FullConnectomeBaseline, LeverageScoreAttack, PCASubspaceBaseline
from repro.datasets import HCPLikeDataset
from repro.reporting.tables import format_table


def _run_ablation(hcp_config):
    dataset = HCPLikeDataset(
        n_subjects=hcp_config.n_subjects,
        n_regions=hcp_config.n_regions,
        n_timepoints=hcp_config.n_timepoints,
        random_state=hcp_config.seed,
    )
    pair = dataset.encoding_pair("REST")
    rows = []
    for selection in ("deterministic", "leverage", "l2", "uniform"):
        attack = LeverageScoreAttack(
            n_features=hcp_config.n_features, selection=selection, random_state=0
        )
        accuracy = attack.fit_identify(pair["reference"], pair["target"]).accuracy()
        rows.append([selection, hcp_config.n_features, 100 * accuracy])
    baseline = FullConnectomeBaseline().fit_identify(pair["reference"], pair["target"])
    rows.append(["full connectome", pair["reference"].n_features, 100 * baseline.accuracy()])
    pca = PCASubspaceBaseline(n_components=20).fit_identify(pair["reference"], pair["target"])
    rows.append(["PCA subspace (20 comp.)", 20, 100 * pca.accuracy()])
    return rows


def test_ablation_sampling_strategy(benchmark, hcp_config):
    rows = run_once(benchmark, _run_ablation, hcp_config)
    print()
    print(
        format_table(
            ["Selection", "Features", "Accuracy (%)"],
            rows,
            title="Ablation: feature-selection strategy (REST identification)",
        )
    )
    accuracies = {row[0]: row[2] for row in rows}
    # The paper's deterministic selection must not lose to uniform sampling.
    assert accuracies["deterministic"] >= accuracies["uniform"]
