"""Import-check every benchmark module (CI benchmark-smoke job).

Benchmarks only execute under pytest-benchmark, but import-time breakage
(renamed experiment functions, moved helpers) should fail fast in CI without
paying for a full benchmark run.  This script imports every
``benchmarks/bench_*.py`` module with the benchmarks directory on
``sys.path`` (mirroring how pytest resolves their ``conftest`` import).

Usage::

    PYTHONPATH=src python scripts/check_benchmarks.py
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

#: Benchmarks CI depends on (smoke-run directly in the workflow); a rename or
#: deletion should fail here, not in a YAML file nobody executes locally.
REQUIRED_BENCHMARKS = {
    "bench_runtime_batching",
    "bench_gallery_matching",
    "bench_service_batching",
}


def main() -> int:
    benchmarks_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    sys.path.insert(0, str(benchmarks_dir))
    failures = []
    modules = sorted(path.stem for path in benchmarks_dir.glob("bench_*.py"))
    missing = REQUIRED_BENCHMARKS - set(modules)
    if missing:
        for module_name in sorted(missing):
            print(f"FAIL {module_name}: required benchmark module is missing")
        return 1
    for module_name in modules:
        try:
            importlib.import_module(module_name)
            print(f"ok   {module_name}")
        except Exception as exc:  # surface every broken module, not just the first
            failures.append((module_name, exc))
            print(f"FAIL {module_name}: {type(exc).__name__}: {exc}")
    print(f"{len(modules) - len(failures)}/{len(modules)} benchmark modules import cleanly")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
