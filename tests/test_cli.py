"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestListCommand:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_experiment_registry_covers_all_paper_results(self):
        assert set(EXPERIMENTS) == {
            "figure1",
            "figure2",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "table1",
            "table2",
            "defense",
        }


class TestDemoCommand:
    def test_demo_prints_attack_report(self, capsys):
        exit_code = main(
            [
                "demo",
                "--subjects", "8",
                "--regions", "40",
                "--timepoints", "100",
                "--features", "60",
                "--seed", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "identification accuracy" in output


class TestRunCommand:
    def test_run_single_experiment_and_save(self, capsys, tmp_path, monkeypatch):
        # Patch in a tiny configuration so the CLI test stays fast.
        from repro.experiments import ADHDExperimentConfig, HCPExperimentConfig
        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "_configs",
            lambda paper_scale: (
                HCPExperimentConfig(
                    n_subjects=8, n_regions=30, n_timepoints=80,
                    n_features=40, n_labelled_subjects=4,
                    tsne_iterations=80, performance_repetitions=2,
                    multisite_repetitions=1, multisite_n_timepoints=80, seed=1,
                ),
                ADHDExperimentConfig(
                    n_cases=4, n_controls=4, n_regions=24, n_timepoints=80,
                    n_features=40, identification_repetitions=2, seed=1,
                ),
            ),
        )
        exit_code = main(["run", "figure1", "--save", str(tmp_path / "fig1")])
        output = capsys.readouterr().out
        assert "figure1" in output
        assert (tmp_path / "fig1.json").exists()
        assert exit_code in (0, 1)  # shape may not hold at this tiny scale

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])


class TestGalleryCommand:
    def _build(self, tmp_path, capsys, **overrides):
        args = {
            "--subjects": "8", "--regions": "28", "--timepoints": "70",
            "--features": "50", "--seed": "2",
        }
        args.update(overrides)
        argv = ["gallery", "build", "--dir", str(tmp_path / "gal")]
        for key, value in args.items():
            argv.extend([key, value])
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_build_saves_a_gallery(self, tmp_path, capsys):
        output = self._build(tmp_path, capsys)
        assert "built gallery: 8 subjects" in output
        assert (tmp_path / "gal" / "gallery.npz").exists()
        assert (tmp_path / "gal" / "gallery.json").exists()

    def test_identify_reports_accuracy_and_cache(self, tmp_path, capsys):
        self._build(tmp_path, capsys)
        assert main(
            ["gallery", "identify", "--dir", str(tmp_path / "gal"), "--repeat", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "identification accuracy" in output
        assert "hits" in output

    def test_enroll_grows_the_gallery(self, tmp_path, capsys):
        self._build(tmp_path, capsys)
        assert main(
            ["gallery", "enroll", "--dir", str(tmp_path / "gal"), "--extra-subjects", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "enrolled 3 new subject(s)" in output
        assert "11 subjects" in output
        assert main(["gallery", "info", "--dir", str(tmp_path / "gal")]) == 0
        assert "subjects enrolled   : 11" in capsys.readouterr().out

    def test_info_prints_fingerprint_and_cache_kinds(self, tmp_path, capsys):
        self._build(tmp_path, capsys)
        assert main(["gallery", "info", "--dir", str(tmp_path / "gal")]) == 0
        output = capsys.readouterr().out
        assert "fingerprint" in output
        for kind in ("gallery", "leverage", "svd", "group_matrix"):
            assert kind in output

    def test_randomized_build(self, tmp_path, capsys):
        output = self._build(
            tmp_path, capsys, **{"--method": "randomized", "--rank": "4"}
        )
        assert "randomized SVD" in output

    def test_missing_gallery_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["gallery"])

    def test_missing_gallery_directory_is_a_clean_error(self, tmp_path, capsys):
        assert main(["gallery", "info", "--dir", str(tmp_path / "nope")]) == 1
        assert "no saved gallery" in capsys.readouterr().err


class TestRuntimeInfoCommand:
    def test_runtime_info_prints_cache_workers_and_blas(self, capsys):
        assert main(["runtime-info"]) == 0
        output = capsys.readouterr().out
        assert "cache stats" in output
        assert "workers" in output
        assert "blas detection" in output

    def test_runtime_info_reflects_worker_flags(self, capsys):
        assert main(["runtime-info", "--workers", "5", "--executor", "process"]) == 0
        output = capsys.readouterr().out
        assert "max_workers=5" in output
        assert "executor=process" in output


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
