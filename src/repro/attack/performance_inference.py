"""Task-performance inference (paper Section 3.3.3, Table 1).

Given connectomes of subjects performing a task and the published performance
metric of a training subset, the attack predicts the performance of held-out
(anonymous) subjects: leverage scores are computed on the training group
matrix, the feature space is restricted to the top-scoring features, and an
SVR is fitted with the performance metric as the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.connectome.group import GroupMatrix
from repro.exceptions import AttackError, ValidationError
from repro.linalg.leverage import PrincipalFeaturesSubspace
from repro.ml.metrics import nrmse_percent
from repro.ml.model_selection import train_test_split
from repro.ml.ridge import KernelRidge
from repro.ml.svr import LinearSVR
from repro.utils.rng import RandomStateLike, as_rng
from repro.utils.stats import summarize
from repro.utils.validation import check_array


@dataclass
class PerformancePredictionResult:
    """Train/test errors of one repetition of the performance regression."""

    train_nrmse_percent: float
    test_nrmse_percent: float
    train_indices: np.ndarray
    test_indices: np.ndarray
    predictions: np.ndarray
    targets: np.ndarray


@dataclass
class PerformanceInferenceAttack:
    """Predict task performance of anonymous subjects from their connectomes.

    Parameters
    ----------
    n_features:
        Number of top-leverage connectome features used as regressors.  The
        regression needs a larger feature budget than the identification
        attack because the performance-informative edges are spread across
        the task-active sub-network.
    test_fraction:
        Fraction of subjects held out as the anonymous test set (20 of 100 in
        the paper).
    regressor:
        ``"svr"`` (the paper's choice) or ``"kernel_ridge"`` (baseline).
    svr_C / svr_epsilon:
        SVR hyperparameters.
    nrmse_normalization:
        How the RMSE is normalized into the Table 1 metric: ``"mean"``
        (divide by the mean performance) or ``"range"``.
    random_state:
        Seed controlling the train/test splits.
    """

    n_features: int = 300
    test_fraction: float = 0.2
    regressor: str = "svr"
    svr_C: float = 2.0
    svr_epsilon: float = 0.01
    nrmse_normalization: str = "mean"
    random_state: RandomStateLike = None

    def _make_regressor(self):
        if self.regressor == "svr":
            return LinearSVR(C=self.svr_C, epsilon=self.svr_epsilon)
        if self.regressor == "kernel_ridge":
            return KernelRidge(alpha=1.0, kernel="rbf")
        raise AttackError(
            f"regressor must be 'svr' or 'kernel_ridge', got {self.regressor!r}"
        )

    def run_once(
        self,
        group: GroupMatrix,
        performance: np.ndarray,
        random_state: RandomStateLike = None,
    ) -> PerformancePredictionResult:
        """One train/test repetition of the performance regression."""
        performance = check_array(performance, name="performance", ndim=1)
        if performance.shape[0] != group.n_scans:
            raise ValidationError(
                "performance vector length must equal the number of scans "
                f"({performance.shape[0]} != {group.n_scans})"
            )
        n_subjects = group.n_scans
        train_idx, test_idx = train_test_split(
            n_subjects, test_fraction=self.test_fraction, random_state=random_state
        )

        train_group = group.select_columns(train_idx)
        n_features = min(self.n_features, train_group.n_features)
        selector = PrincipalFeaturesSubspace(n_features=n_features).fit(train_group.data)

        train_features = selector.transform(group.data[:, train_idx]).T
        test_features = selector.transform(group.data[:, test_idx]).T

        model = self._make_regressor()
        model.fit(train_features, performance[train_idx])
        train_predictions = model.predict(train_features)
        test_predictions = model.predict(test_features)

        return PerformancePredictionResult(
            train_nrmse_percent=nrmse_percent(
                performance[train_idx],
                train_predictions,
                normalization=self.nrmse_normalization,
            ),
            test_nrmse_percent=nrmse_percent(
                performance[test_idx],
                test_predictions,
                normalization=self.nrmse_normalization,
            ),
            train_indices=train_idx,
            test_indices=test_idx,
            predictions=test_predictions,
            targets=performance[test_idx],
        )

    def run(
        self,
        group: GroupMatrix,
        performance: np.ndarray,
        n_repetitions: int = 20,
    ) -> Dict[str, float]:
        """Repeat the regression over random splits and summarize the errors.

        Returns a dictionary with mean and standard deviation of train and
        test normalized RMSE (in percent), matching the format of Table 1.
        """
        if n_repetitions < 1:
            raise ValidationError("n_repetitions must be at least 1")
        rng = as_rng(self.random_state)
        train_errors: List[float] = []
        test_errors: List[float] = []
        for _ in range(n_repetitions):
            result = self.run_once(group, performance, random_state=rng)
            train_errors.append(result.train_nrmse_percent)
            test_errors.append(result.test_nrmse_percent)
        train_mean, train_std = summarize(np.asarray(train_errors))
        test_mean, test_std = summarize(np.asarray(test_errors))
        return {
            "train_nrmse_mean": train_mean,
            "train_nrmse_std": train_std,
            "test_nrmse_mean": test_mean,
            "test_nrmse_std": test_std,
            "n_repetitions": float(n_repetitions),
        }
