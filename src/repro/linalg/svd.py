"""Singular value decomposition helpers.

The group matrices in this library are tall and thin (tens of thousands of
connectome features by tens or hundreds of subjects), so the economy SVD is
cheap.  A randomized SVD is also provided for the paper-scale configuration
(64 620 features x 800 scans) where even the economy factorization becomes
noticeably slower.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, as_rng
from repro.utils.validation import check_matrix, check_positive_int


def economy_svd(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Economy-size SVD ``A = U @ diag(s) @ Vt``.

    Returns
    -------
    (U, s, Vt):
        ``U`` has shape ``(m, r)``, ``s`` shape ``(r,)``, ``Vt`` shape
        ``(r, n)`` where ``r = min(m, n)``.
    """
    a = check_matrix(matrix, name="matrix")
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    return u, s, vt


def randomized_svd(
    matrix: np.ndarray,
    rank: int,
    oversampling: int = 10,
    power_iterations: int = 2,
    random_state: RandomStateLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized SVD (Halko, Martinsson & Tropp) truncated to ``rank``.

    Parameters
    ----------
    matrix:
        ``(m, n)`` input matrix.
    rank:
        Target rank of the approximation.
    oversampling:
        Extra random projections beyond ``rank``; improves accuracy.
    power_iterations:
        Number of power iterations; each sharpens the spectrum and improves
        the subspace estimate for matrices with slowly decaying singular
        values (which connectome group matrices typically are).
    random_state:
        Seed or generator for the Gaussian test matrix.
    """
    a = check_matrix(matrix, name="matrix")
    rank = check_positive_int(rank, name="rank")
    m, n = a.shape
    if rank > min(m, n):
        raise ValidationError(
            f"rank must be <= min(m, n) = {min(m, n)}, got {rank}"
        )
    rng = as_rng(random_state)
    n_components = min(rank + max(oversampling, 0), min(m, n))

    test = rng.standard_normal((n, n_components))
    sample = a @ test
    for _ in range(max(power_iterations, 0)):
        sample = a @ (a.T @ sample)
    q, _ = np.linalg.qr(sample)

    small = q.T @ a
    u_small, s, vt = np.linalg.svd(small, full_matrices=False)
    u = q @ u_small
    return u[:, :rank], s[:rank], vt[:rank, :]


def stable_rank(matrix: np.ndarray) -> float:
    """Stable (numerical) rank ``||A||_F^2 / ||A||_2^2``.

    The stable rank is a robust proxy for how many directions carry signal;
    it is used by the sketch-quality diagnostics to decide how many rows a
    sampler should keep for a given error target.
    """
    a = check_matrix(matrix, name="matrix")
    fro_sq = float(np.sum(a * a))
    if fro_sq == 0.0:
        return 0.0
    spectral = float(np.linalg.norm(a, ord=2))
    return fro_sq / (spectral * spectral)


def truncate_svd(
    u: np.ndarray, s: np.ndarray, vt: np.ndarray, rank: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncate an existing SVD factorization to ``rank`` components."""
    rank = check_positive_int(rank, name="rank")
    if rank > s.shape[0]:
        raise ValidationError(
            f"rank must be <= {s.shape[0]} (available components), got {rank}"
        )
    return u[:, :rank], s[:rank], vt[:rank, :]


def effective_rank(s: np.ndarray, energy: float = 0.95) -> int:
    """Smallest number of singular values capturing ``energy`` of the spectrum."""
    s = np.asarray(s, dtype=np.float64)
    if s.size == 0:
        raise ValidationError("singular value array must not be empty")
    if not 0.0 < energy <= 1.0:
        raise ValidationError(f"energy must be in (0, 1], got {energy}")
    total = float(np.sum(s**2))
    if total == 0.0:
        return 1
    cumulative = np.cumsum(s**2) / total
    return int(np.searchsorted(cumulative, energy) + 1)
