"""Import-check every benchmark module (CI benchmark-smoke job).

Benchmarks only execute under pytest-benchmark, but import-time breakage
(renamed experiment functions, moved helpers) should fail fast in CI without
paying for a full benchmark run.  This script imports every
``benchmarks/bench_*.py`` module with the benchmarks directory on
``sys.path`` (mirroring how pytest resolves their ``conftest`` import).

With ``--backend-trajectory PATH`` it additionally *runs* the backend
matching benchmark and writes its trajectory record (transport speedup,
selected backend, precision outcomes) to PATH — the ``BENCH_backend.json``
artifact the CI smoke job uploads so speedups can be tracked across
commits.  ``--http-trajectory PATH`` does the same for the HTTP serving
benchmark, writing the wire-overhead ratio per codec (JSON vs binary
frames) to PATH (``BENCH_http.json`` in CI).  ``--index-trajectory PATH``
runs the candidate-pruning index benchmark and writes its per-size
speedups, p50/p99 latencies, and top-1 agreement verdict to PATH
(``BENCH_index.json`` in CI); top-1 agreement is the hard gate, the
speedups are recorded for trajectory tracking.  ``--router-trajectory
PATH`` runs the gallery-router scaling benchmark and writes the 4-vs-1
worker aggregate throughput plus the routed bit-identity verdict (IPC and
both HTTP codecs) to PATH (``BENCH_router.json`` in CI); bit-identity is
the hard gate, the speedup is recorded for trajectory tracking.
``--chaos-trajectory PATH`` runs the chaos-churn serving benchmark — the
phased fault schedule (worker crash, hang, corrupted/truncated IPC
frames, disk-cache I/O errors) under concurrent identify + enroll churn —
and writes per-phase outcomes, p50/p99 latency, and every hard-gate
verdict to PATH (``BENCH_chaos.json`` in CI); all of its gates
(bit-identity to the fault-free replay, bounded error rate, observable
respawns/timeouts/disk errors, bounded hung-worker failover, zero leaked
segments or worker processes) are hard gates.  ``--fleet-trajectory PATH``
runs the fleet-churn benchmark — the live membership schedule (2 → 3 → 4
→ 3 via ``add_worker``/``remove_worker``) under concurrent identify +
enroll load — and writes per-step remap fractions, drain outcomes, and
every hard-gate verdict to PATH (``BENCH_fleet.json`` in CI); all of its
gates (bit-identity to the resize-free replay, zero identify errors,
durable-or-safe-to-resend enrolls, remap <= 1.5/N per step, clean drains
within the deadline, zero leaks) are hard gates.

Usage::

    PYTHONPATH=src python scripts/check_benchmarks.py
    PYTHONPATH=src python scripts/check_benchmarks.py --backend-trajectory BENCH_backend.json
    PYTHONPATH=src python scripts/check_benchmarks.py --http-trajectory BENCH_http.json
    PYTHONPATH=src python scripts/check_benchmarks.py --index-trajectory BENCH_index.json
    PYTHONPATH=src python scripts/check_benchmarks.py --router-trajectory BENCH_router.json
    PYTHONPATH=src python scripts/check_benchmarks.py --chaos-trajectory BENCH_chaos.json
    PYTHONPATH=src python scripts/check_benchmarks.py --fleet-trajectory BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path

#: Benchmarks CI depends on (smoke-run directly in the workflow); a rename or
#: deletion should fail here, not in a YAML file nobody executes locally.
REQUIRED_BENCHMARKS = {
    "bench_runtime_batching",
    "bench_gallery_matching",
    "bench_service_batching",
    "bench_backend_matching",
    "bench_http_serving",
    "bench_index_pruning",
    "bench_router_scaling",
    "bench_chaos_serving",
    "bench_fleet_churn",
}


def _benchmarks_on_path() -> Path:
    """Make ``benchmarks/`` importable (idempotent); returns the directory."""
    benchmarks_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    if str(benchmarks_dir) not in sys.path:
        sys.path.insert(0, str(benchmarks_dir))
    return benchmarks_dir


def write_backend_trajectory(path: Path) -> dict:
    """Run the backend benchmark and write its trajectory record to ``path``.

    Runs the acceptance workload (256-subject x 400-feature gallery, 256
    probes) — a couple of seconds end to end, and the only scale at which
    the transport comparison means anything (tiny workloads cannot amortize
    the one-time segment publish).  The record carries the transport speedup
    and the selected backend name.
    """
    _benchmarks_on_path()
    import bench_backend_matching as bench

    transport = bench.run_transport_benchmark()
    precision = bench.run_precision_benchmark()
    record = bench.trajectory_record(transport, precision)
    path.write_text(json.dumps(record, indent=2))
    return record


def write_http_trajectory(path: Path) -> dict:
    """Run the HTTP serving benchmark and write its trajectory record.

    Runs the acceptance workload (64-subject x 100-region gallery, one
    pipelined single-probe request per subject over 4 keep-alive clients)
    under both wire codecs — the only scale at which the ≤5x binary-codec
    bound is meaningful.  The record carries the wire-overhead ratio per
    codec and the binary-vs-JSON speedup.
    """
    _benchmarks_on_path()
    import bench_http_serving as bench

    outcome = bench.run_http_benchmark()
    record = bench.trajectory_record(outcome)
    path.write_text(json.dumps(record, indent=2))
    return record


def write_index_trajectory(path: Path, sizes=None) -> dict:
    """Run the index pruning benchmark and write its trajectory record.

    Runs the acceptance trajectory (1k / 10k / 100k gallery columns) by
    default; ``sizes`` overrides it for smoke runs.  The record carries the
    per-size p50/p99 latencies and speedups plus the top-1 agreement
    verdict — agreement is the hard gate, the speedups are trajectory data
    (CI boxes are too noisy to pin a ratio here; the pytest-benchmark test
    owns the >= 5x bound).
    """
    _benchmarks_on_path()
    import bench_index_pruning as bench

    kwargs = {} if sizes is None else {"sizes": tuple(sizes)}
    outcome = bench.run_pruning_benchmark(**kwargs)
    record = bench.trajectory_record(outcome)
    path.write_text(json.dumps(record, indent=2))
    return record


def write_router_trajectory(
    path: Path, galleries=None, subjects=None, requests=None
) -> dict:
    """Run the gallery-router scaling benchmark and write its trajectory.

    Runs the acceptance workload (16 galleries of 96 subjects over a
    4-gallery-per-worker residency cap, 4 workers vs 1) by default; the
    keyword overrides shrink it for smoke runs.  The record carries the
    aggregate warm-throughput speedup and the routed bit-identity verdict
    (IPC transport plus both HTTP codecs) — bit-identity is the hard gate,
    the speedup is trajectory data (CI boxes are too noisy to pin a ratio
    here; the pytest-benchmark test owns the >= 2x acceptance bound).
    """
    _benchmarks_on_path()
    import bench_router_scaling as bench

    kwargs = {}
    if galleries is not None:
        kwargs["n_galleries"] = int(galleries)
    if subjects is not None:
        kwargs["n_subjects"] = int(subjects)
    if requests is not None:
        kwargs["requests_per_gallery"] = int(requests)
    outcome = bench.run_router_benchmark(**kwargs)
    record = bench.trajectory_record(outcome)
    path.write_text(json.dumps(record, indent=2))
    return record


def write_chaos_trajectory(
    path: Path, galleries=None, subjects=None, requests=None
) -> dict:
    """Run the chaos-churn serving benchmark and write its trajectory.

    Runs the full phased fault schedule (crash → hang → corrupt →
    truncate → cache-I/O) at the acceptance workload by default; the
    keyword overrides shrink it for smoke runs.  The record carries
    per-phase outcomes, aggregate p50/p99 latency, and — unlike the other
    trajectories — a ``gate_failures`` list in which *every* entry is a
    hard failure: correctness under faults has no soft mode.
    """
    _benchmarks_on_path()
    import bench_chaos_serving as bench

    kwargs = {}
    if galleries is not None:
        kwargs["n_galleries"] = int(galleries)
    if subjects is not None:
        kwargs["n_subjects"] = int(subjects)
    if requests is not None:
        kwargs["requests_per_gallery"] = int(requests)
    outcome = bench.run_chaos_benchmark(**kwargs)
    record = bench.trajectory_record(outcome)
    path.write_text(json.dumps(record, indent=2))
    return record


def write_fleet_trajectory(
    path: Path, galleries=None, subjects=None, hold=None
) -> dict:
    """Run the fleet-churn benchmark and write its trajectory record.

    Runs the live membership schedule (2 → 3 → 4 → 3) under concurrent
    identify + enroll load at the acceptance workload by default; the
    keyword overrides shrink it for smoke runs.  The record carries
    per-step remap fractions and drain outcomes plus a ``gate_failures``
    list in which *every* entry is a hard failure: correctness across a
    resize has no soft mode.
    """
    _benchmarks_on_path()
    import bench_fleet_churn as bench

    kwargs = {}
    if galleries is not None:
        kwargs["n_galleries"] = int(galleries)
    if subjects is not None:
        kwargs["n_subjects"] = int(subjects)
    if hold is not None:
        kwargs["hold_s"] = float(hold)
    outcome = bench.run_fleet_churn_benchmark(**kwargs)
    record = bench.trajectory_record(outcome)
    path.write_text(json.dumps(record, indent=2))
    return record


def run_import_checks() -> int:
    """Import every ``benchmarks/bench_*.py`` module; 0 when all succeed.

    Imports resolve against the benchmarks directory (mirroring how pytest
    resolves their ``conftest`` import), so this must run in a process that
    has not already bound ``conftest`` to something else.
    """
    benchmarks_dir = _benchmarks_on_path()
    failures = []
    modules = sorted(path.stem for path in benchmarks_dir.glob("bench_*.py"))
    missing = REQUIRED_BENCHMARKS - set(modules)
    if missing:
        for module_name in sorted(missing):
            print(f"FAIL {module_name}: required benchmark module is missing")
        return 1
    for module_name in modules:
        try:
            importlib.import_module(module_name)
            print(f"ok   {module_name}")
        except Exception as exc:  # surface every broken module, not just the first
            failures.append((module_name, exc))
            print(f"FAIL {module_name}: {type(exc).__name__}: {exc}")
    print(f"{len(modules) - len(failures)}/{len(modules)} benchmark modules import cleanly")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend-trajectory", metavar="PATH", default=None,
        help="run the backend matching benchmark and write its trajectory "
        "record (speedup + backend name) to PATH",
    )
    parser.add_argument(
        "--http-trajectory", metavar="PATH", default=None,
        help="run the HTTP serving benchmark and write its trajectory "
        "record (wire-overhead ratio per codec) to PATH",
    )
    parser.add_argument(
        "--index-trajectory", metavar="PATH", default=None,
        help="run the candidate-pruning index benchmark and write its "
        "trajectory record (per-size speedups, p50/p99, top-1 agreement) "
        "to PATH",
    )
    parser.add_argument(
        "--index-sizes", metavar="N,N,...", default=None,
        help="override the gallery sizes of --index-trajectory "
        "(comma-separated; default: the 1k/10k/100k acceptance trajectory)",
    )
    parser.add_argument(
        "--router-trajectory", metavar="PATH", default=None,
        help="run the gallery-router scaling benchmark and write its "
        "trajectory record (4-vs-1 worker throughput, routed bit-identity) "
        "to PATH",
    )
    parser.add_argument(
        "--router-galleries", metavar="N", type=int, default=None,
        help="override the gallery count of --router-trajectory (smoke runs)",
    )
    parser.add_argument(
        "--router-subjects", metavar="N", type=int, default=None,
        help="override the subjects per gallery of --router-trajectory",
    )
    parser.add_argument(
        "--router-requests", metavar="N", type=int, default=None,
        help="override the requests per gallery of --router-trajectory",
    )
    parser.add_argument(
        "--chaos-trajectory", metavar="PATH", default=None,
        help="run the chaos-churn serving benchmark (phased fault schedule "
        "under concurrent identify + enroll churn) and write its trajectory "
        "record (per-phase outcomes, p50/p99, hard-gate verdicts) to PATH",
    )
    parser.add_argument(
        "--chaos-galleries", metavar="N", type=int, default=None,
        help="override the gallery count of --chaos-trajectory (smoke runs)",
    )
    parser.add_argument(
        "--chaos-subjects", metavar="N", type=int, default=None,
        help="override the subjects per gallery of --chaos-trajectory",
    )
    parser.add_argument(
        "--chaos-requests", metavar="N", type=int, default=None,
        help="override the identify requests per gallery per phase of "
        "--chaos-trajectory (>= 4 so every fault rule fires)",
    )
    parser.add_argument(
        "--fleet-trajectory", metavar="PATH", default=None,
        help="run the fleet-churn benchmark (live 2→3→4→3 membership "
        "schedule under concurrent identify + enroll load) and write its "
        "trajectory record (per-step remap fractions, drain outcomes, "
        "hard-gate verdicts) to PATH",
    )
    parser.add_argument(
        "--fleet-galleries", metavar="N", type=int, default=None,
        help="override the gallery count of --fleet-trajectory (smoke runs)",
    )
    parser.add_argument(
        "--fleet-subjects", metavar="N", type=int, default=None,
        help="override the subjects per gallery of --fleet-trajectory",
    )
    parser.add_argument(
        "--fleet-hold", metavar="SECONDS", type=float, default=None,
        help="override the load hold between membership steps of "
        "--fleet-trajectory",
    )
    args = parser.parse_args(argv)

    if run_import_checks() != 0:
        return 1

    if args.backend_trajectory:
        record = write_backend_trajectory(Path(args.backend_trajectory))
        print(
            "backend trajectory: backend={backend} "
            "transport_speedup={speedup:.2f}x "
            "bitwise_equal={equal} -> {path}".format(
                backend=record["backend"],
                speedup=record["speedup"],
                equal=record["transport"]["bitwise_equal"],
                path=args.backend_trajectory,
            )
        )
        if not record["transport"]["bitwise_equal"]:
            print("FAIL backend trajectory: transports disagreed bitwise")
            return 1

    if args.http_trajectory:
        record = write_http_trajectory(Path(args.http_trajectory))
        codecs = record["codecs"]
        print(
            "http trajectory: json={json_oh:.1f}x binary={bin_oh:.1f}x "
            "binary_vs_json={speedup:.1f}x bitwise_equal={equal} -> {path}".format(
                json_oh=codecs["json"]["overhead"],
                bin_oh=codecs["binary"]["overhead"],
                speedup=record["binary_vs_json_speedup"] or float("nan"),
                equal=record["bitwise_equal"],
                path=args.http_trajectory,
            )
        )
        # Correctness is the hard gate here; the overhead ratios are
        # recorded for trajectory tracking (CI boxes are too noisy to pin).
        if not record["bitwise_equal"]:
            print("FAIL http trajectory: responses diverged from serial identify")
            return 1
        if record["max_http_batch"] <= 1:
            print("FAIL http trajectory: pipelined HTTP clients did not coalesce")
            return 1

    if args.index_trajectory:
        sizes = None
        if args.index_sizes:
            sizes = [int(token) for token in args.index_sizes.split(",") if token]
        record = write_index_trajectory(Path(args.index_trajectory), sizes=sizes)
        largest = max(record["entries"], key=lambda entry: entry["n_columns"])
        print(
            "index trajectory: speedup_at_max={speedup:.1f}x "
            "(at {columns} columns, ratio {ratio:.3f}) "
            "top1_agreement={agreement} -> {path}".format(
                speedup=record["speedup_at_max"],
                columns=largest["n_columns"],
                ratio=largest["pruning_ratio"],
                agreement=record["top1_agreement"],
                path=args.index_trajectory,
            )
        )
        # Exactness is the hard gate; the speedup is trajectory data (the
        # pytest-benchmark test owns the >= 5x acceptance bound).
        if not record["top1_agreement"]:
            print("FAIL index trajectory: pruned matching diverged from full scan")
            return 1

    if args.router_trajectory:
        record = write_router_trajectory(
            Path(args.router_trajectory),
            galleries=args.router_galleries,
            subjects=args.router_subjects,
            requests=args.router_requests,
        )
        print(
            "router trajectory: speedup={speedup:.2f}x "
            "({workers} workers vs 1) bitwise_equal={equal} "
            "http_codecs={codecs} -> {path}".format(
                speedup=record["speedup"],
                workers=record["fleet_workers"],
                equal=record["bitwise_equal"],
                codecs=record["http_codecs"],
                path=args.router_trajectory,
            )
        )
        # Bit-identity is the hard gate; the speedup is trajectory data
        # (the pytest-benchmark test owns the >= 2x acceptance bound).
        if not record["bitwise_equal"]:
            print("FAIL router trajectory: routed responses diverged from single-process serving")
            return 1

    if args.chaos_trajectory:
        record = write_chaos_trajectory(
            Path(args.chaos_trajectory),
            galleries=args.chaos_galleries,
            subjects=args.chaos_subjects,
            requests=args.chaos_requests,
        )
        totals = record["totals"]
        print(
            "chaos trajectory: {ok}/{requests} bit-identical, "
            "error_rate={rate:.3f}, respawns={respawns}, "
            "timeouts={timeouts}, disk_errors={disk}, "
            "p50={p50:.1f}ms p99={p99:.1f}ms -> {path}".format(
                ok=totals["ok"],
                requests=totals["requests"],
                rate=record["error_rate"],
                respawns=totals["respawns"],
                timeouts=totals["worker_timeouts"],
                disk=totals["disk_errors"],
                p50=record["latency"]["p50_ms"],
                p99=record["latency"]["p99_ms"],
                path=args.chaos_trajectory,
            )
        )
        # Every chaos gate is hard: correctness under faults has no soft mode.
        if record["gate_failures"]:
            for failure in record["gate_failures"]:
                print(f"FAIL chaos trajectory: {failure}")
            return 1

    if args.fleet_trajectory:
        record = write_fleet_trajectory(
            Path(args.fleet_trajectory),
            galleries=args.fleet_galleries,
            subjects=args.fleet_subjects,
            hold=args.fleet_hold,
        )
        totals = record["totals"]
        remap = ", ".join(
            "{action} {frac:.3f}/{bound:.3f}".format(
                action=step["action"],
                frac=step["remap_fraction"],
                bound=step["remap_bound"],
            )
            for step in record["steps"]
        )
        print(
            "fleet trajectory: {ok}/{requests} bit-identical, "
            "{errors} error(s), churn {churn_ok}+{resends} resend(s), "
            "remap [{remap}], members={members} -> {path}".format(
                ok=totals["ok"],
                requests=totals["requests"],
                errors=totals["errors"],
                churn_ok=totals["churn_ok"],
                resends=totals["churn_resends"],
                remap=remap,
                members=len(record["final_members"]),
                path=args.fleet_trajectory,
            )
        )
        # Every fleet gate is hard: correctness across a resize has no
        # soft mode.
        if record["gate_failures"]:
            for failure in record["gate_failures"]:
                print(f"FAIL fleet trajectory: {failure}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
