"""Benchmark: zero-copy shard transport and matching-backend precision.

Two claims of the backend layer are quantified on the matching core that
every pooled sharded identify runs through (``match_normalized`` over a
pre-normalized gallery/probe pair):

* **Transport** — process-pool shard matching with the zero-copy
  shared-memory transport (inputs published once into content-keyed
  segments, workers attach) versus the legacy pickle transport (every
  ``match_shard`` spec ships a contiguous copy of its reference block plus
  the full probe matrix through the executor).  Acceptance: >= 2x faster on
  a large gallery (256 subjects x 400 reduced features, 256 probe columns),
  with *bit-for-bit* identical float64 results.
* **Precision** — the opt-in ``numpy32`` mixed-precision backend versus the
  default bit-exact ``numpy64`` kernel on warm single-process identifies.
  Acceptance: >= 1.5x faster with full top-1 (argmax) agreement.  The
  ``blas_blocked`` float64 GEMM backend is measured alongside for the
  record.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_backend_matching.py --gallery 64 --features 80
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Optional

import numpy as np

from repro.gallery.matching import match_normalized, normalize_columns
from repro.runtime.backend import get_backend
from repro.runtime.cache import ArtifactCache
from repro.runtime.runner import ExperimentRunner


def make_matching_workload(
    n_features: int = 400, n_gallery: int = 256, n_probes: int = 256, seed: int = 0
):
    """Pre-normalized gallery/probe matrices of an identify-sized workload."""
    rng = np.random.default_rng(seed)
    reference = rng.standard_normal((n_features, n_gallery))
    probe = rng.standard_normal((n_features, n_probes))
    ref_normalized, ref_degenerate = normalize_columns(reference)
    probe_normalized, probe_degenerate = normalize_columns(probe)
    return ref_normalized, ref_degenerate, probe_normalized, probe_degenerate


def run_transport_benchmark(
    n_gallery: int = 256,
    n_features: int = 400,
    n_probes: int = 256,
    shard_size: int = 16,
    max_workers: int = 2,
    repeats: int = 3,
    calls_per_repeat: int = 3,
    seed: int = 0,
) -> dict:
    """Pooled sharded matching: shared-memory transport vs pickle transport.

    Both runners are warmed first (pool spawned; for the shared runner the
    segments are published), then each transport is timed ``repeats`` times
    over ``calls_per_repeat`` consecutive identifies — the repeated-identify
    shape is exactly where content-keyed segments pay, since the pickle
    path re-ships every byte per call.  Bitwise equality of the two pooled
    results (and the inline single-process result) is asserted on every
    measurement.
    """
    ref_n, ref_d, probe_n, probe_d = make_matching_workload(
        n_features, n_gallery, n_probes, seed=seed
    )
    inline = match_normalized(ref_n, probe_n, ref_d, probe_d, shard_size=shard_size)

    def measure(runner) -> tuple:
        best = float("inf")
        result: Optional[np.ndarray] = None
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(calls_per_repeat):
                result = match_normalized(
                    ref_n, probe_n, ref_d, probe_d,
                    shard_size=shard_size, runner=runner,
                )
            best = min(best, (time.perf_counter() - start) / calls_per_repeat)
        return best, result

    shared_runner = ExperimentRunner(
        cache=ArtifactCache(), max_workers=max_workers, executor="process",
        shared_transport=True,
    )
    pickle_runner = ExperimentRunner(
        cache=ArtifactCache(), max_workers=max_workers, executor="process",
        shared_transport=False,
    )
    try:
        measure(shared_runner)  # warm-up: pool spawn + segment publish
        measure(pickle_runner)  # warm-up: pool spawn
        shared_s, shared_result = measure(shared_runner)
        pickle_s, pickle_result = measure(pickle_runner)
        store = shared_runner._shared_store
        n_segments = store.n_segments if store is not None else 0
        shared_bytes = store.total_bytes if store is not None else 0
    finally:
        shared_runner.shutdown()
        pickle_runner.shutdown()
    return {
        "n_gallery": n_gallery,
        "n_features": n_features,
        "n_probes": n_probes,
        "shard_size": shard_size,
        "max_workers": max_workers,
        "pickle_s": pickle_s,
        "shared_s": shared_s,
        "speedup": pickle_s / shared_s if shared_s > 0 else float("inf"),
        "n_segments": n_segments,
        "shared_bytes": shared_bytes,
        "bitwise_equal": bool(
            np.array_equal(shared_result, pickle_result)
            and np.array_equal(shared_result, inline)
        ),
    }


def run_precision_benchmark(
    n_gallery: int = 256,
    n_features: int = 400,
    n_probes: int = 256,
    repeats: int = 5,
    seed: int = 0,
) -> dict:
    """Warm single-process matching: float32 and BLAS backends vs ``numpy64``.

    Everything outside the contraction (normalization, caching) is already
    warm/shared, so this isolates the backend kernels the way a warm
    identify sees them.  Top-1 agreement of each alternative backend against
    the bit-exact default is reported alongside the speedups.
    """
    ref_n, ref_d, probe_n, probe_d = make_matching_workload(
        n_features, n_gallery, n_probes, seed=seed
    )

    def measure(backend) -> tuple:
        best = float("inf")
        result: Optional[np.ndarray] = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = match_normalized(ref_n, probe_n, ref_d, probe_d, backend=backend)
            best = min(best, time.perf_counter() - start)
        return best, result

    measure("numpy64")  # warm-up
    float64_s, base = measure("numpy64")
    float32_s, reduced = measure("numpy32")
    blas_s, blas = measure("blas_blocked")
    base_top1 = np.argmax(base, axis=0)
    return {
        "n_gallery": n_gallery,
        "n_features": n_features,
        "n_probes": n_probes,
        "float64_s": float64_s,
        "float32_s": float32_s,
        "blas_s": blas_s,
        "float32_speedup": float64_s / float32_s if float32_s > 0 else float("inf"),
        "blas_speedup": float64_s / blas_s if blas_s > 0 else float("inf"),
        "float32_top1_agreement": float(
            np.mean(np.argmax(reduced, axis=0) == base_top1)
        ),
        "blas_top1_agreement": float(np.mean(np.argmax(blas, axis=0) == base_top1)),
        "blas_max_abs_diff": float(np.max(np.abs(blas - base))),
    }


def test_shared_transport_beats_pickle_transport(benchmark):
    """Acceptance: zero-copy pooled sharded matching >= 2x the pickle path.

    Timing on a loaded CI box is noisy, so up to three measurement rounds
    are taken and the best speedup kept; bitwise equality (shared == pickle
    == inline) must hold on every round.
    """
    def measure():
        best = None
        for _ in range(3):
            outcome = run_transport_benchmark()
            assert outcome["bitwise_equal"], "transports disagreed bitwise"
            assert outcome["n_segments"] == 2, (
                "expected exactly one reference + one probe segment "
                f"(content-keyed reuse), got {outcome['n_segments']}"
            )
            if best is None or outcome["speedup"] > best["speedup"]:
                best = outcome
            if best["speedup"] >= 2.0:
                break
        return best

    outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        "\npickle {pickle_s:.4f}s vs shared {shared_s:.4f}s "
        "({n_gallery}x{n_features} gallery, {n_probes} probes, "
        "shard {shard_size}) -> {speedup:.1f}x".format(**outcome)
    )
    assert outcome["speedup"] >= 2.0, (
        f"shared-memory transport only {outcome['speedup']:.2f}x faster than pickle"
    )


def test_float32_backend_beats_float64_on_warm_identify(benchmark):
    """Acceptance: opt-in ``numpy32`` >= 1.5x ``numpy64`` with top-1 agreement."""
    def measure():
        best = None
        for _ in range(3):
            outcome = run_precision_benchmark()
            assert outcome["float32_top1_agreement"] == 1.0, (
                "float32 backend changed a top-1 identity on the benchmark workload"
            )
            if best is None or outcome["float32_speedup"] > best["float32_speedup"]:
                best = outcome
            if best["float32_speedup"] >= 1.5:
                break
        return best

    outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        "\nfloat64 {float64_s:.4f}s vs float32 {float32_s:.4f}s -> "
        "{float32_speedup:.1f}x (blas_blocked: {blas_speedup:.1f}x)".format(**outcome)
    )
    assert outcome["float32_speedup"] >= 1.5, (
        f"float32 backend only {outcome['float32_speedup']:.2f}x faster than float64"
    )


def trajectory_record(transport: dict, precision: dict) -> dict:
    """The ``BENCH_backend.json`` payload CI uploads as a trajectory artifact."""
    return {
        "benchmark": "bench_backend_matching",
        "backend": get_backend(None).name,
        "speedup": transport["speedup"],
        "transport": transport,
        "precision": precision,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gallery", type=int, default=256)
    parser.add_argument("--features", type=int, default=400)
    parser.add_argument("--probes", type=int, default=None,
                        help="probe columns (default: same as --gallery)")
    parser.add_argument("--shard-size", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the trajectory record to PATH")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless the transport speedup reaches this "
                        "(only meaningful at acceptance scale; tiny smoke "
                        "workloads cannot amortize the segment publish)")
    args = parser.parse_args()
    n_probes = args.probes if args.probes is not None else args.gallery
    shard_size = max(1, min(args.shard_size, args.gallery))
    transport = run_transport_benchmark(
        n_gallery=args.gallery, n_features=args.features, n_probes=n_probes,
        shard_size=shard_size, max_workers=args.workers,
        repeats=args.repeats, seed=args.seed,
    )
    precision = run_precision_benchmark(
        n_gallery=args.gallery, n_features=args.features, n_probes=n_probes,
        repeats=max(args.repeats, 3), seed=args.seed,
    )
    print(
        "workload: {n_gallery}-subject x {n_features}-feature gallery, "
        "{n_probes} probes, shard size {shard_size}".format(**transport)
    )
    print("pickle transport       : {pickle_s:.4f} s".format(**transport))
    print("shared-memory transport: {shared_s:.4f} s".format(**transport))
    print("transport speedup      : {speedup:.1f}x "
          "(bitwise equal: {bitwise_equal})".format(**transport))
    print("float64 backend        : {float64_s:.4f} s".format(**precision))
    print("float32 backend        : {float32_s:.4f} s "
          "({float32_speedup:.1f}x, top-1 agreement "
          "{float32_top1_agreement:.2f})".format(**precision))
    print("blas_blocked backend   : {blas_s:.4f} s "
          "({blas_speedup:.1f}x, max |diff| "
          "{blas_max_abs_diff:.2e})".format(**precision))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(trajectory_record(transport, precision), handle, indent=2)
        print(f"trajectory written to {args.json}")
    ok = (
        transport["bitwise_equal"]
        and precision["float32_top1_agreement"] == 1.0
        and (
            args.require_speedup is None
            or transport["speedup"] >= args.require_speedup
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
