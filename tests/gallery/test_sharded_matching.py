"""Shard-vs-single-block equivalence tests for gallery matching.

The acceptance criterion is *bit-for-bit* equality: every shard layout —
including pathological one-column edge shards — must reproduce the
single-block similarity matrix exactly, inline or through a runner pool.
"""

import numpy as np
import pytest

from repro.attack.matching import match_subjects
from repro.exceptions import AttackError, ValidationError
from repro.gallery.matching import (
    match_against_gallery,
    shard_similarity,
    shard_slices,
)
from repro.runtime.cache import ArtifactCache
from repro.runtime.runner import ExperimentRunner


@pytest.fixture(scope="module")
def reduced_pair(rest_pair):
    """A reduced reference/probe matrix pair in a 60-feature space."""
    rng = np.random.default_rng(11)
    features = rng.choice(rest_pair["reference"].n_features, size=60, replace=False)
    return (
        rest_pair["reference"].data[features, :],
        rest_pair["target"].data[features, :],
    )


class TestShardSlices:
    def test_none_is_single_block(self):
        assert shard_slices(10, None) == [(0, 10)]

    def test_blocks_cover_in_order(self):
        assert shard_slices(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_oversized_shard_is_single_block(self):
        assert shard_slices(5, 100) == [(0, 5)]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValidationError):
            shard_slices(0, None)
        with pytest.raises(ValidationError):
            shard_slices(10, 0)


class TestShardEquivalence:
    def test_single_block_matches_match_subjects_predictions(self, reduced_pair):
        reference, probe = reduced_pair
        single = match_against_gallery(reference, probe)
        legacy = match_subjects(reference, probe)
        assert np.array_equal(
            single.predicted_reference_index, legacy.predicted_reference_index
        )
        assert np.allclose(single.similarity, legacy.similarity)

    @pytest.mark.parametrize("shard_size", [1, 2, 3, 5, 7, 11, 12, 100])
    def test_every_shard_layout_is_bitwise_identical(self, reduced_pair, shard_size):
        reference, probe = reduced_pair
        single = match_against_gallery(reference, probe)
        sharded = match_against_gallery(reference, probe, shard_size=shard_size)
        assert np.array_equal(sharded.similarity, single.similarity)
        assert np.array_equal(
            sharded.predicted_reference_index, single.predicted_reference_index
        )
        assert np.array_equal(sharded.margin(), single.margin())
        assert sharded.predicted_subject_ids == single.predicted_subject_ids

    def test_degenerate_columns_survive_sharding(self):
        rng = np.random.default_rng(0)
        reference = rng.standard_normal((40, 9))
        probe = rng.standard_normal((40, 4))
        reference[:, 2] = 1.5  # constant gallery subject
        probe[:, 1] = -3.0  # constant probe
        single = match_against_gallery(reference, probe)
        sharded = match_against_gallery(reference, probe, shard_size=2)
        assert np.array_equal(sharded.similarity, single.similarity)
        assert np.all(single.similarity[2, :] == 0.0)
        assert np.all(single.similarity[:, 1] == 0.0)

    def test_subject_ids_flow_through(self, reduced_pair):
        reference, probe = reduced_pair
        ref_ids = [f"r{i}" for i in range(reference.shape[1])]
        tgt_ids = [f"t{i}" for i in range(probe.shape[1])]
        result = match_against_gallery(
            reference, probe,
            reference_subject_ids=ref_ids, target_subject_ids=tgt_ids,
            shard_size=4,
        )
        assert result.reference_subject_ids == ref_ids
        assert result.target_subject_ids == tgt_ids


class TestPooledSharding:
    def test_thread_pool_matches_inline_bitwise(self, reduced_pair):
        reference, probe = reduced_pair
        inline = match_against_gallery(reference, probe, shard_size=5)
        runner = ExperimentRunner(cache=ArtifactCache(), max_workers=3)
        pooled = match_against_gallery(reference, probe, shard_size=5, runner=runner)
        assert np.array_equal(pooled.similarity, inline.similarity)

    def test_process_pool_matches_inline_bitwise(self, reduced_pair):
        reference, probe = reduced_pair
        inline = match_against_gallery(reference, probe, shard_size=24)
        runner = ExperimentRunner(max_workers=2, executor="process")
        pooled = match_against_gallery(reference, probe, shard_size=24, runner=runner)
        assert np.array_equal(pooled.similarity, inline.similarity)

    def test_single_shard_skips_the_pool(self, reduced_pair):
        reference, probe = reduced_pair

        class ExplodingRunner:
            def run(self, specs):  # pragma: no cover - must not be called
                raise AssertionError("runner must not be used for a single shard")

        result = match_against_gallery(
            reference, probe, shard_size=None, runner=ExplodingRunner()
        )
        assert result.similarity.shape == (reference.shape[1], probe.shape[1])


class TestValidation:
    def test_feature_space_mismatch_rejected(self, reduced_pair):
        reference, probe = reduced_pair
        with pytest.raises(AttackError, match="feature space"):
            match_against_gallery(reference, probe[:-1, :])

    def test_single_feature_rejected(self):
        with pytest.raises(AttackError, match="two features"):
            match_against_gallery(np.ones((1, 3)), np.ones((1, 2)))

    def test_id_length_mismatch_rejected(self, reduced_pair):
        reference, probe = reduced_pair
        with pytest.raises(ValidationError, match="reference_subject_ids"):
            match_against_gallery(reference, probe, reference_subject_ids=["a"])

    def test_shard_similarity_validates_feature_space(self):
        with pytest.raises(AttackError, match="feature space"):
            shard_similarity(np.ones((4, 2)), np.ones((5, 2)))
