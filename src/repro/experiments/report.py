"""Run every experiment and assemble the EXPERIMENTS.md report."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.exceptions import ExperimentError
from repro.experiments.config import ADHDExperimentConfig, HCPExperimentConfig
from repro.reporting.experiment import ExperimentRecord


def run_all_experiments(
    hcp_config: Optional[HCPExperimentConfig] = None,
    adhd_config: Optional[ADHDExperimentConfig] = None,
    max_workers: int = 1,
) -> Dict[str, ExperimentRecord]:
    """Run every figure/table experiment and return the records by id.

    The batch executes through :class:`repro.runtime.ExperimentRunner`, so
    passing ``max_workers > 1`` runs independent experiments concurrently
    while group matrices flow through the shared artifact cache.
    """
    # Imported here: repro.runtime's task registry lazily imports this package.
    from repro.runtime import ExperimentRunner, paper_experiment_specs

    hcp_config = hcp_config or HCPExperimentConfig()
    adhd_config = adhd_config or ADHDExperimentConfig()
    runner = ExperimentRunner(max_workers=max_workers)
    results = runner.run(paper_experiment_specs(hcp_config, adhd_config))
    failed = [result for result in results if not result.ok]
    if failed:
        details = "; ".join(f"{result.name}: {result.error}" for result in failed)
        raise ExperimentError(f"{len(failed)} experiment(s) failed — {details}")
    return {result.name: result.output for result in results}


def generate_experiments_markdown(
    records: Dict[str, ExperimentRecord],
    output_path: Optional[str] = None,
    preamble: str = "",
) -> str:
    """Assemble a markdown report from experiment records.

    Parameters
    ----------
    records:
        Experiment id → record (e.g. the output of :func:`run_all_experiments`).
    output_path:
        If given, the markdown document is also written to this path.
    preamble:
        Optional introductory text inserted after the heading.
    """
    lines: List[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
    ]
    if preamble:
        lines.append(preamble)
        lines.append("")
    ordered_ids = sorted(records)
    n_holding = sum(1 for rid in ordered_ids if records[rid].shape_holds())
    lines.append(
        f"{n_holding} of {len(ordered_ids)} experiments preserve the paper's "
        "qualitative shape with the default (scaled-down) configuration."
    )
    lines.append("")
    for record_id in ordered_ids:
        lines.append(records[record_id].markdown_section())
    document = "\n".join(lines)
    if output_path is not None:
        Path(output_path).write_text(document, encoding="utf-8")
    return document
