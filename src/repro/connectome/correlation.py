"""Connectome construction and (de)vectorization.

The connectome of a scan is the Pearson correlation matrix of its region
time series.  Because the matrix is symmetric with a unit diagonal, only the
strict upper triangle is kept when vectorizing: 360 regions yield
360*359/2 = 64 620 features, matching the paper's count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.stats import correlation_matrix, fisher_z
from repro.utils.validation import check_matrix, check_symmetric


def correlation_connectome(
    timeseries: np.ndarray, fisher: bool = False
) -> np.ndarray:
    """Pearson-correlation connectome of a ``(regions, time)`` matrix.

    Parameters
    ----------
    timeseries:
        Preprocessed region time series.
    fisher:
        If true, apply the Fisher r-to-z transform to off-diagonal entries
        (variance-stabilizing; useful before averaging connectomes).
    """
    corr = correlation_matrix(timeseries)
    if fisher:
        off_diagonal = ~np.eye(corr.shape[0], dtype=bool)
        transformed = corr.copy()
        transformed[off_diagonal] = fisher_z(corr[off_diagonal])
        return transformed
    return corr


def partial_correlation_connectome(
    timeseries: np.ndarray, shrinkage: float = 0.1
) -> np.ndarray:
    """Partial-correlation connectome via a shrinkage-regularized precision matrix.

    Included as an alternative coherence measure (the paper notes the method
    is agnostic to "a given measure of region-to-region coherence").
    """
    ts = check_matrix(timeseries, name="timeseries", min_cols=4)
    if not 0.0 <= shrinkage < 1.0:
        raise ValidationError(f"shrinkage must be in [0, 1), got {shrinkage}")
    covariance = np.cov(ts)
    n_regions = covariance.shape[0]
    target = np.eye(n_regions) * np.trace(covariance) / n_regions
    regularized = (1.0 - shrinkage) * covariance + shrinkage * target
    precision = np.linalg.pinv(regularized)
    diagonal = np.sqrt(np.abs(np.diag(precision)))
    diagonal = np.where(diagonal < 1e-12, 1.0, diagonal)
    partial = -precision / np.outer(diagonal, diagonal)
    np.fill_diagonal(partial, 1.0)
    return np.clip(partial, -1.0, 1.0)


def vectorize_connectome(connectome: np.ndarray) -> np.ndarray:
    """Stack the strict upper triangle of a symmetric connectome into a vector.

    The ordering is row-major over the upper triangle (``numpy.triu_indices``),
    so two connectomes with the same number of regions vectorize into
    comparable feature spaces.
    """
    matrix = check_symmetric(connectome, name="connectome", atol=1e-6)
    n_regions = matrix.shape[0]
    if n_regions < 2:
        raise ValidationError("connectome must have at least 2 regions to vectorize")
    rows, cols = np.triu_indices(n_regions, k=1)
    return matrix[rows, cols]


def devectorize_connectome(vector: np.ndarray, n_regions: Optional[int] = None) -> np.ndarray:
    """Rebuild a symmetric connectome (unit diagonal) from its vectorized form."""
    vec = np.asarray(vector, dtype=np.float64)
    if vec.ndim != 1:
        raise ValidationError(f"vector must be 1-D, got shape {vec.shape}")
    if n_regions is None:
        n_regions = n_regions_from_vector_length(vec.shape[0])
    expected = n_regions * (n_regions - 1) // 2
    if vec.shape[0] != expected:
        raise ValidationError(
            f"vector of length {vec.shape[0]} does not match {n_regions} regions "
            f"(expected {expected})"
        )
    matrix = np.eye(n_regions)
    rows, cols = np.triu_indices(n_regions, k=1)
    matrix[rows, cols] = vec
    matrix[cols, rows] = vec
    return matrix


def n_regions_from_vector_length(length: int) -> int:
    """Invert ``length = n (n - 1) / 2`` to recover the region count."""
    n_float = (1.0 + np.sqrt(1.0 + 8.0 * length)) / 2.0
    n_regions = int(round(n_float))
    if n_regions * (n_regions - 1) // 2 != length:
        raise ValidationError(
            f"{length} is not a valid vectorized-connectome length"
        )
    return n_regions


def vector_index_to_region_pair(index: int, n_regions: int) -> Tuple[int, int]:
    """Map a vectorized-feature index back to its ``(row, col)`` region pair.

    This is how the attack reports *where* in the brain the signature lives:
    the top-leverage feature indices translate directly to region pairs.
    """
    if n_regions < 2:
        raise ValidationError("n_regions must be at least 2")
    n_features = n_regions * (n_regions - 1) // 2
    if not 0 <= index < n_features:
        raise ValidationError(f"index must be in [0, {n_features}), got {index}")
    rows, cols = np.triu_indices(n_regions, k=1)
    return int(rows[index]), int(cols[index])
