"""Diagnostics for sketch quality.

The paper motivates leverage-score sampling through two error bounds: the
additive bound for l2 sampling (Equation 2) and the relative bound for
leverage sampling (Equation 4).  These helpers measure the corresponding
errors empirically so that tests and ablation benchmarks can verify the
theory qualitatively (leverage < l2 < uniform for matrices with non-uniform
row importance).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.svd import economy_svd
from repro.utils.validation import check_matrix, check_positive_int


def gram_approximation_error(
    matrix: np.ndarray, sketch: np.ndarray, relative: bool = True
) -> float:
    """Frobenius error ``||A^T A - S^T S||_F`` (optionally relative to ``||A^T A||_F``).

    This is the quantity bounded by paper Equation 2 for l2 sampling.
    """
    a = check_matrix(matrix, name="matrix")
    s = check_matrix(sketch, name="sketch")
    if a.shape[1] != s.shape[1]:
        raise ValidationError(
            "matrix and sketch must have the same number of columns, "
            f"got {a.shape[1]} and {s.shape[1]}"
        )
    gram_a = a.T @ a
    gram_s = s.T @ s
    error = float(np.linalg.norm(gram_a - gram_s, ord="fro"))
    if not relative:
        return error
    denom = float(np.linalg.norm(gram_a, ord="fro"))
    return error / denom if denom > 0 else error


def low_rank_approximation(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Best rank-``k`` approximation ``A_k`` from the truncated SVD."""
    a = check_matrix(matrix, name="matrix")
    rank = check_positive_int(rank, name="rank")
    if rank > min(a.shape):
        raise ValidationError(f"rank must be <= {min(a.shape)}, got {rank}")
    u, s, vt = economy_svd(a)
    return (u[:, :rank] * s[:rank]) @ vt[:rank, :]


def projection_reconstruction_error(
    matrix: np.ndarray, row_indices: np.ndarray, rank: Optional[int] = None
) -> float:
    """Relative error of projecting ``A`` onto the row span of selected rows.

    Computes ``||A - A pinv(A_S) A_S||_F / ||A - A_k||_F`` where ``A_S`` is
    the selected-row submatrix — the quantity controlled by the relative
    error bound (paper Equation 4).  When ``rank`` is ``None`` the
    denominator is ``||A||_F`` instead, giving an absolute relative error.
    """
    a = check_matrix(matrix, name="matrix")
    idx = np.asarray(row_indices, dtype=int)
    if idx.ndim != 1 or idx.size == 0:
        raise ValidationError("row_indices must be a non-empty 1-D index array")
    if idx.min() < 0 or idx.max() >= a.shape[0]:
        raise ValidationError("row_indices out of range for the given matrix")
    a_s = a[idx, :]
    projector = np.linalg.pinv(a_s) @ a_s
    residual = a - a @ projector
    numerator = float(np.linalg.norm(residual, ord="fro"))
    if rank is None:
        denom = float(np.linalg.norm(a, ord="fro"))
    else:
        best = low_rank_approximation(a, rank)
        denom = float(np.linalg.norm(a - best, ord="fro"))
    if denom <= 1e-15:
        return 0.0 if numerator <= 1e-12 else float("inf")
    return numerator / denom


def sketch_quality_report(
    matrix: np.ndarray, sketch: np.ndarray, row_indices: Optional[np.ndarray] = None
) -> Dict[str, float]:
    """Bundle of sketch-quality metrics used by the ablation benchmarks."""
    report = {
        "gram_relative_error": gram_approximation_error(matrix, sketch, relative=True),
        "gram_absolute_error": gram_approximation_error(matrix, sketch, relative=False),
        "sketch_rows": float(sketch.shape[0]),
        "original_rows": float(matrix.shape[0]),
        "compression_ratio": float(matrix.shape[0]) / float(sketch.shape[0]),
    }
    if row_indices is not None:
        report["projection_relative_error"] = projection_reconstruction_error(
            matrix, row_indices
        )
    return report
