"""Tests for tables, figure summaries, and experiment records."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.reporting.experiment import ExperimentRecord, PaperComparison
from repro.reporting.figures import ascii_heatmap, cluster_separation, heatmap_summary
from repro.reporting.tables import format_accuracy_matrix, format_table


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["task", "accuracy"], [["REST", 0.97], ["WM", 0.25]])
        assert "task" in text and "REST" in text and "0.97" in text

    def test_title_rendered(self):
        text = format_table(["a"], [[1.0]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValidationError):
            format_table([], [])

    def test_accuracy_matrix_rendering(self):
        text = format_accuracy_matrix(
            np.array([[1.0, 0.5], [0.25, 0.75]]),
            row_labels=["REST", "WM"],
            col_labels=["REST", "WM"],
        )
        assert "100.0" in text and "25.0" in text

    def test_accuracy_matrix_shape_mismatch(self):
        with pytest.raises(ValidationError):
            format_accuracy_matrix(np.eye(3), ["a"], ["b"])


class TestFigures:
    def test_heatmap_summary_contrast(self):
        matrix = np.full((4, 4), 0.1)
        np.fill_diagonal(matrix, 0.9)
        summary = heatmap_summary(matrix)
        assert summary["contrast"] == pytest.approx(0.8)

    def test_ascii_heatmap_dimensions(self, rng):
        text = ascii_heatmap(rng.standard_normal((100, 100)), max_size=20, title="sim")
        lines = text.splitlines()
        assert lines[0] == "sim"
        assert len(lines) == 22  # title + 20 rows + range line

    def test_ascii_heatmap_small_matrix_unchanged(self, rng):
        text = ascii_heatmap(rng.standard_normal((5, 5)), max_size=20)
        assert len(text.splitlines()) == 6

    def test_cluster_separation_separated_blobs(self, rng):
        a = rng.standard_normal((20, 2))
        b = rng.standard_normal((20, 2)) + 20.0
        embedding = np.vstack([a, b])
        labels = ["a"] * 20 + ["b"] * 20
        stats = cluster_separation(embedding, labels)
        assert stats["separation_ratio"] > 3.0
        assert stats["n_clusters"] == 2.0

    def test_cluster_separation_single_cluster_raises(self, rng):
        with pytest.raises(ValidationError):
            cluster_separation(rng.standard_normal((10, 2)), ["x"] * 10)


class TestExperimentRecord:
    def _record(self):
        record = ExperimentRecord(
            experiment_id="figureX",
            title="Example",
            configuration={"n_subjects": 10},
            metrics={"accuracy": 0.9},
            arrays={"similarity": np.eye(3)},
        )
        record.add_comparison("accuracy", "> 94 %", "90 %", True)
        record.add_comparison("contrast", "strong diagonal", "0.5", True)
        return record

    def test_shape_holds(self):
        record = self._record()
        assert record.shape_holds()
        record.add_comparison("extra", "x", "y", False)
        assert not record.shape_holds()

    def test_shape_holds_false_without_comparisons(self):
        assert not ExperimentRecord(experiment_id="e", title="t").shape_holds()

    def test_markdown_section_contains_table(self):
        text = self._record().markdown_section()
        assert "figureX" in text
        assert "| Quantity | Paper | Measured | Shape holds |" in text
        assert "> 94 %" in text

    def test_save_roundtrip(self, tmp_path):
        record = self._record()
        record.save(tmp_path / "figx")
        from repro.utils.io import load_result

        loaded = load_result(tmp_path / "figx")
        assert loaded["experiment_id"] == "figureX"
        np.testing.assert_allclose(loaded["similarity"], np.eye(3))

    def test_paper_comparison_row(self):
        comparison = PaperComparison("desc", "1", "2", False)
        assert comparison.as_row() == ["desc", "1", "2", "no"]
