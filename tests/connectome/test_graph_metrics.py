"""Tests for graph-theoretic connectome metrics."""

import numpy as np
import pytest

from repro.connectome.connectome import Connectome
from repro.connectome.graph_metrics import (
    global_efficiency,
    graph_metric_profile,
    mean_clustering_coefficient,
    modularity,
    node_strengths,
    profile_distance,
)
from repro.exceptions import ValidationError


def _connectome_from_matrix(matrix):
    return Connectome(matrix=np.asarray(matrix, dtype=float), subject_id="s")


@pytest.fixture()
def random_connectome(rng):
    ts = rng.standard_normal((12, 200))
    return Connectome.from_timeseries(ts, subject_id="s")


@pytest.fixture()
def modular_connectome(rng):
    """Two strongly intra-connected blocks with weak inter-block links."""
    n = 12
    matrix = np.full((n, n), 0.05)
    matrix[:6, :6] = 0.8
    matrix[6:, 6:] = 0.8
    np.fill_diagonal(matrix, 1.0)
    return _connectome_from_matrix(matrix)


class TestNodeStrengths:
    def test_shape_and_nonnegative(self, random_connectome):
        strengths = node_strengths(random_connectome)
        assert strengths.shape == (12,)
        assert np.all(strengths >= 0)

    def test_known_values(self):
        matrix = np.array([[1.0, 0.5, -0.3], [0.5, 1.0, 0.0], [-0.3, 0.0, 1.0]])
        strengths = node_strengths(_connectome_from_matrix(matrix))
        np.testing.assert_allclose(strengths, [0.8, 0.5, 0.3])

    def test_threshold_removes_weak_edges(self):
        matrix = np.array([[1.0, 0.5, 0.1], [0.5, 1.0, 0.1], [0.1, 0.1, 1.0]])
        strengths = node_strengths(_connectome_from_matrix(matrix), threshold=0.3)
        np.testing.assert_allclose(strengths, [0.5, 0.5, 0.0])


class TestClusteringAndEfficiency:
    def test_fully_connected_strong_graph(self):
        n = 6
        matrix = np.full((n, n), 0.9)
        np.fill_diagonal(matrix, 1.0)
        connectome = _connectome_from_matrix(matrix)
        assert mean_clustering_coefficient(connectome, threshold=0.5) > 0.8
        assert global_efficiency(connectome, threshold=0.5) > 0.5

    def test_empty_graph_gives_zero(self):
        matrix = np.eye(5)
        connectome = _connectome_from_matrix(matrix)
        assert mean_clustering_coefficient(connectome, threshold=0.5) == 0.0
        assert global_efficiency(connectome, threshold=0.5) == 0.0
        assert modularity(connectome, threshold=0.5) == 0.0

    def test_efficiency_higher_for_stronger_graph(self):
        weak = np.full((6, 6), 0.3)
        strong = np.full((6, 6), 0.9)
        np.fill_diagonal(weak, 1.0)
        np.fill_diagonal(strong, 1.0)
        assert global_efficiency(_connectome_from_matrix(strong), threshold=0.1) > \
            global_efficiency(_connectome_from_matrix(weak), threshold=0.1)


class TestModularity:
    def test_modular_structure_detected(self, modular_connectome, random_connectome):
        assert modularity(modular_connectome, threshold=0.1) > \
            modularity(random_connectome, threshold=0.1) - 0.05
        assert modularity(modular_connectome, threshold=0.1) > 0.2


class TestProfiles:
    def test_profile_keys(self, random_connectome):
        profile = graph_metric_profile(random_connectome)
        assert set(profile) == {
            "mean_node_strength",
            "node_strength_std",
            "mean_clustering",
            "global_efficiency",
            "modularity",
        }

    def test_invalid_threshold(self, random_connectome):
        with pytest.raises(ValidationError):
            graph_metric_profile(random_connectome, threshold=1.5)

    def test_profile_distance_zero_for_identical(self, random_connectome):
        profile = graph_metric_profile(random_connectome)
        assert profile_distance(profile, profile) == pytest.approx(0.0)

    def test_profile_distance_positive_for_different(self, random_connectome, modular_connectome):
        a = graph_metric_profile(random_connectome)
        b = graph_metric_profile(modular_connectome)
        assert profile_distance(a, b) > 0.05

    def test_profile_distance_requires_shared_keys(self):
        with pytest.raises(ValidationError):
            profile_distance({"a": 1.0}, {"b": 2.0})


class TestDefenseGraphUtility:
    def test_graph_utility_reported(self, rest_pair):
        from repro.defense import SignatureNoiseDefense, evaluate_defense

        defense = SignatureNoiseDefense(n_features=50, noise_scale=2.0, random_state=0)
        outcome = evaluate_defense(
            rest_pair["reference"], rest_pair["target"], defense, include_graph_utility=True
        )
        assert "graph_utility" in outcome
        assert outcome["graph_utility"] <= 1.0
        # Targeted noise on 50 of 1128 features barely moves group-level
        # graph metrics.
        assert outcome["graph_utility"] > 0.7
