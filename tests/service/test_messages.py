"""Tests for the typed request/response messages (JSON round-trip, validation)."""

import json

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.service import (
    EnrollRequest,
    EnrollResponse,
    IdentifyRequest,
    IdentifyResponse,
    ServiceConfig,
    ServiceStats,
)


class TestIdentifyRequest:
    def test_auto_request_ids_are_unique(self):
        first = IdentifyRequest(gallery="g")
        second = IdentifyRequest(gallery="g")
        assert first.request_id != second.request_id
        assert first.request_id.startswith("idreq-")

    def test_round_trip_drops_the_payload(self, sessions):
        _, probes = sessions
        request = IdentifyRequest(
            gallery="hcp", scans=probes[:2], metadata={"site": "A"}
        )
        payload = json.loads(json.dumps(request.to_dict()))
        assert payload["n_probes"] == 2
        restored = IdentifyRequest.from_dict(payload)
        assert restored.request_id == request.request_id
        assert restored.gallery == "hcp"
        assert restored.metadata == {"site": "A"}
        assert restored.scans is None and restored.probe is None

    def test_rejects_empty_gallery_name(self):
        with pytest.raises(ValidationError, match="gallery"):
            IdentifyRequest(gallery="")

    def test_rejects_both_scans_and_probe(self, sessions, rest_pair):
        _, probes = sessions
        with pytest.raises(ValidationError, match="not both"):
            IdentifyRequest(gallery="g", scans=probes, probe=rest_pair["target"])


class TestResponses:
    def test_identify_response_round_trip(self):
        response = IdentifyResponse(
            request_id="idreq-1",
            gallery="hcp",
            predicted_subject_ids=["a", "b"],
            target_subject_ids=["a", "c"],
            margins=[0.5, 0.25],
            accuracy=0.5,
            n_gallery_subjects=12,
            batch_size=4,
            timings={"batch_s": 0.01},
        )
        payload = json.loads(json.dumps(response.to_dict()))
        restored = IdentifyResponse.from_dict(payload)
        assert restored == response
        assert restored.ok and restored.n_probes == 2

    def test_enroll_round_trip(self):
        request = EnrollRequest(gallery="hcp", create=True)
        restored = EnrollRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert restored.gallery == "hcp" and restored.create

        response = EnrollResponse(
            request_id=request.request_id, gallery="hcp", enrolled=3, n_subjects=15
        )
        assert EnrollResponse.from_dict(response.to_dict()) == response

    def test_error_response_reports_not_ok(self):
        response = IdentifyResponse(
            request_id="idreq-9", gallery="hcp", status="error", error="boom"
        )
        assert not response.ok
        assert IdentifyResponse.from_dict(response.to_dict()).error == "boom"


class TestServiceStats:
    def test_round_trip_and_derived_mean(self):
        stats = ServiceStats(
            requests=10,
            probes=20,
            batches=4,
            coalesced_batches=2,
            max_batch_size=5,
            galleries={"hcp": 10},
            cache_kinds={"probe": {"hits": 8, "misses": 2, "hit_rate": 0.8}},
            cache_dir="/tmp/cache",
        )
        assert stats.mean_batch_size == pytest.approx(2.5)
        payload = json.loads(stats.to_json())
        assert payload["mean_batch_size"] == pytest.approx(2.5)
        assert ServiceStats.from_dict(payload) == stats

    def test_summary_lines_surface_disk_tier_and_kinds(self):
        stats = ServiceStats(
            requests=1,
            batches=1,
            cache_kinds={"probe": {"hits": 1, "misses": 1, "disk_hits": 1, "hit_rate": 0.5}},
            cache_dir="/scratch/tier",
        )
        text = "\n".join(stats.summary_lines())
        assert "/scratch/tier" in text
        assert "probe" in text and "disk_hits=1" in text


class TestServiceConfig:
    def test_json_round_trip(self):
        config = ServiceConfig(
            n_features=80, rank=5, method="randomized", random_state=7,
            shard_size=16, max_workers=2, max_batch_size=32, batch_window_s=0.01,
        )
        assert ServiceConfig.from_json(config.to_json()) == config

    def test_replace_revalidates(self):
        config = ServiceConfig()
        assert config.replace(shard_size=4).shard_size == 4
        with pytest.raises(ConfigurationError):
            config.replace(max_workers=0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_features": 0},
            {"method": "magic"},
            {"executor": "fiber"},
            {"max_batch_size": 0},
            {"batch_window_s": -1.0},
            {"random_state": object()},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**overrides)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            ServiceConfig.from_dict({"n_features": 10, "warp_factor": 9})

    def test_gallery_kwargs_cover_fit_shard_and_backend_knobs(self):
        kwargs = ServiceConfig(n_features=40, shard_size=8).gallery_kwargs()
        assert kwargs["n_features"] == 40
        assert kwargs["shard_size"] == 8
        assert kwargs["backend"] == "numpy64"
        assert set(kwargs) == {
            "n_features", "rank", "fisher", "method", "random_state", "shard_size",
            "backend",
        }

    def test_default_config_shares_the_process_cache(self):
        from repro.runtime.cache import get_default_cache

        assert ServiceConfig().build_cache() is get_default_cache()
        dedicated = ServiceConfig(max_memory_items=8).build_cache()
        assert dedicated is not get_default_cache()
        assert dedicated.max_memory_items == 8

    def test_build_runner_only_for_pools(self):
        assert ServiceConfig().build_runner() is None
        runner = ServiceConfig(max_workers=3).build_runner()
        assert runner is not None and runner.max_workers == 3
