"""Bias-field (magnetic-field inhomogeneity) correction.

The scanner applies a smooth multiplicative gain field across the volume; the
correction estimates that field by heavily smoothing the temporal mean image
and divides it out — the classic homomorphic approach used when a dedicated
field map is not available (paper Figure 4: "correction for spatial
distortions due to gradient non-linearity").
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.exceptions import PreprocessingError
from repro.imaging.volume import Volume4D


class BiasFieldCorrection:
    """Homomorphic bias-field correction via Gaussian-smoothed mean image.

    Parameters
    ----------
    smoothing_sigma:
        Standard deviation (in voxels) of the Gaussian used to estimate the
        low-frequency intensity field; should be large relative to anatomical
        detail but small relative to the head.
    epsilon:
        Numerical floor for the estimated field.
    """

    def __init__(self, smoothing_sigma: float = 6.0, epsilon: float = 1e-6):
        if smoothing_sigma <= 0:
            raise PreprocessingError(
                f"smoothing_sigma must be positive, got {smoothing_sigma}"
            )
        self.smoothing_sigma = float(smoothing_sigma)
        self.epsilon = float(epsilon)
        self.estimated_field_: Optional[np.ndarray] = None

    def apply(self, volume: Volume4D) -> Volume4D:
        """Divide out the estimated low-frequency intensity field."""
        if not isinstance(volume, Volume4D):
            raise PreprocessingError("BiasFieldCorrection expects a Volume4D input")
        mean_image = volume.mean_image()
        head = mean_image > 1e-9
        if not head.any():
            raise PreprocessingError("volume appears to be empty; cannot estimate a bias field")
        head_mean = float(mean_image[head].mean())
        if head_mean <= self.epsilon:
            raise PreprocessingError("estimated bias field is degenerate (near zero)")
        # Fill the (dark) background with the head mean before smoothing so
        # the estimated field is not dragged towards zero at the head
        # boundary, which would otherwise brighten edge voxels artificially.
        filled = np.where(head, mean_image, head_mean)
        smoothed = gaussian_filter(filled, sigma=self.smoothing_sigma)
        field = np.maximum(smoothed / head_mean, self.epsilon)
        corrected = volume.data / field[..., None]
        self.estimated_field_ = field
        return volume.with_data(corrected)
