"""Defenses against the de-anonymization attack (paper Section 4).

The paper argues that an effective defense must remove the signature without
damaging the image for downstream analyses, and that the localized signature
found by leverage scores tells a defender exactly *where* to add noise.  This
subpackage implements that targeted-noise defense plus the privacy/utility
evaluation needed to study the trade-off.
"""

from repro.defense.noise_injection import (
    SignatureNoiseDefense,
    add_noise_to_features,
    shuffle_features_across_subjects,
)
from repro.defense.reconstruction import LowRankReconstructionDefense
from repro.defense.evaluation import defense_tradeoff_curve, evaluate_defense

__all__ = [
    "SignatureNoiseDefense",
    "LowRankReconstructionDefense",
    "add_noise_to_features",
    "shuffle_features_across_subjects",
    "defense_tradeoff_curve",
    "evaluate_defense",
]
