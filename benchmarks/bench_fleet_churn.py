"""Benchmark: fleet churn — live resizes under identify + enroll load.

The fleet control plane (:mod:`repro.service.fleet`) makes four promises
that no fixed-membership benchmark can check:

* **Correctness survives resizes.**  Every identify that succeeds while
  workers join and leave must be bit-identical to a resize-free replay of
  the same request against a single-process
  :class:`~repro.service.IdentificationService` over the same on-disk
  galleries.  A joining worker is warmed *before* the ring commits; a
  leaving worker drains *after* the ring commits — so no request ever
  observes a partially-moved gallery.
* **Resizes are invisible to clients.**  With the ring committed before
  the drain and identify re-routing on :class:`WorkerRetired`, the
  client-visible identify error count across the whole schedule is zero —
  not merely bounded.  Enrolls that race a removal either complete
  durably or fail with the typed safe-to-resend error; one resend then
  lands on the new owner.
* **Movement is minimal.**  Consistent hashing bounds each step's key
  remap near 1/N; the gate allows 1.5/N (N = the larger fleet) measured
  over a fixed synthetic key population.
* **Departures are clean.**  Every removal reports ``drained=True``
  within the drain deadline, and after the schedule plus shutdown there
  are zero leaked ``repro-shm-*`` segments and zero live worker children.

The schedule is 2 → 3 → 4 → 3 (add, add, remove) with continuous
identify load and enroll churn held across every step.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_fleet_churn.py \
        --galleries 3 --subjects 6 --hold 0.4
"""

from __future__ import annotations

import argparse
import multiprocessing
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets.hcp import HCPLikeDataset
from repro.service import (
    EnrollRequest,
    GalleryRegistry,
    GalleryRouter,
    IdentificationService,
    IdentifyRequest,
    ServiceConfig,
)

#: Fleet size the schedule starts from (it grows to 4, then shrinks to 3).
INITIAL_WORKERS = 2

#: The membership schedule: 2 → 3 → 4 → 3.
SCHEDULE = ("add", "add", "remove")

#: Per-step remap gate: remapped key fraction <= REMAP_FACTOR / N where N
#: is the larger of the two fleet sizes.  Consistent hashing lands near
#: 1/N; the factor absorbs virtual-node placement variance.
REMAP_FACTOR = 1.5

#: Extra identify attempts; one absorbs a WorkerRetired re-route.
DEFAULT_RETRY_ATTEMPTS = 2

#: Drain deadline of the benchmark fleets (seconds) — far above a healthy
#: drain (sub-second) but finite, so a stuck drain fails the gate.
DEFAULT_DRAIN_DEADLINE_S = 10.0

#: Slack (seconds) on the observed drain duration gate.
DRAIN_SLACK_S = 1.0


def _response_document(response) -> dict:
    """A response's comparable document: everything but per-run noise."""
    document = response.to_dict()
    document.pop("request_id", None)
    document.pop("timings", None)
    return document


def _shm_segments() -> list:
    """Live repro shared-memory segment names (the leak check)."""
    from repro.runtime.shm import SEGMENT_PREFIX

    shm_root = Path("/dev/shm")
    if not shm_root.exists():  # pragma: no cover - non-Linux
        return []
    return sorted(path.name for path in shm_root.glob(f"{SEGMENT_PREFIX}-*"))


def _router_children() -> list:
    """Live router worker child processes (the zombie check)."""
    return sorted(
        child.name
        for child in multiprocessing.active_children()
        if child.name.startswith("repro-router-")
    )


def build_fleet_workload(
    root: Path,
    n_galleries: int,
    n_subjects: int,
    n_regions: int,
    n_timepoints: int,
    n_features: int,
    churn_subjects: int,
    probes_per_request: int = 1,
    seed: int = 0,
):
    """Persist the identify galleries; return ``(probes, churn_scans)``."""
    config = ServiceConfig(n_features=n_features)
    probes = {}
    for index in range(n_galleries):
        name = f"gal-{index:03d}"
        dataset = HCPLikeDataset(
            n_subjects=n_subjects,
            n_regions=n_regions,
            n_timepoints=n_timepoints,
            random_state=seed + 101 * index,
        )
        registry = GalleryRegistry(root=root, config=config)
        try:
            registry.build(name, dataset.generate_session("REST", encoding="LR", day=1))
            registry.persist(name)
        finally:
            registry.close()
        probe_session = dataset.generate_session("REST", encoding="RL", day=2)
        probes[name] = list(probe_session[:probes_per_request])
    churn_dataset = HCPLikeDataset(
        n_subjects=max(2, churn_subjects),
        n_regions=n_regions,
        n_timepoints=n_timepoints,
        random_state=seed + 7919,
    )
    churn_scans = list(churn_dataset.generate_session("REST", encoding="LR", day=1))
    return probes, churn_scans


def _identify_driver(router, name, scans, reference_doc, stop, outcome):
    """Identify ``name`` in a loop until ``stop``; classify every response."""
    while not stop.is_set():
        start = time.perf_counter()
        response = router.identify(IdentifyRequest(gallery=name, scans=scans))
        outcome["latencies_s"].append(time.perf_counter() - start)
        if response.status != "ok":
            outcome["errors"] += 1
            outcome["error_samples"].append(response.error)
        elif _response_document(response) == reference_doc:
            outcome["ok"] += 1
        else:
            outcome["mismatches"] += 1
        stop.wait(0.01)


def _churn_driver(router, churn_scans, batch_size, stop, outcome):
    """Enroll fresh subjects into churn galleries until ``stop``.

    An enroll that races a worker removal fails with the typed
    safe-to-resend error (no write occurred); the driver resends it once —
    the resend routes to the new owner.  Any other failure, or a failed
    resend, is a durability bug and counts as ``failed``.
    """
    cursor = 0
    gallery_index = 0
    while not stop.is_set():
        if cursor >= len(churn_scans):
            cursor = 0
            gallery_index += 1
        batch = churn_scans[cursor:cursor + batch_size]
        cursor += batch_size
        request = EnrollRequest(
            gallery=f"churn-{gallery_index:02d}", scans=batch, create=True
        )
        response = router.enroll(request)
        if response.status == "ok":
            outcome["ok"] += 1
            continue
        if response.error and "resending is safe" in response.error:
            outcome["resends"] += 1
            retry = router.enroll(request)
            if retry.status == "ok":
                outcome["ok"] += 1
            else:
                outcome["failed"] += 1
                outcome["failure_samples"].append(retry.error)
        else:
            outcome["failed"] += 1
            outcome["failure_samples"].append(response.error)


def _remap_fraction(before: dict, after: dict) -> float:
    """Fraction of keys whose owner changed between two placements."""
    moved = sum(1 for key, owner in before.items() if after[key] != owner)
    return moved / len(before) if before else 0.0


def run_fleet_churn_benchmark(
    n_galleries: int = 6,
    n_subjects: int = 10,
    n_regions: int = 16,
    n_timepoints: int = 60,
    n_features: int = 40,
    probes_per_request: int = 1,
    churn_batch: int = 2,
    hold_s: float = 0.8,
    placement_keys: int = 2048,
    drain_deadline_s: float = DEFAULT_DRAIN_DEADLINE_S,
    retry_attempts: int = DEFAULT_RETRY_ATTEMPTS,
    max_resident_galleries: int = 2,
    seed: int = 0,
) -> dict:
    """Run the 2→3→4→3 schedule under load; return outcomes + gate inputs.

    ``hold_s`` is how long the load runs between membership steps — long
    enough that every fleet size serves real traffic.  ``placement_keys``
    synthetic keys are snapshotted through ``fleet.placement`` around each
    step to measure the remapped fraction.
    """
    segments_before = set(_shm_segments())
    keys = [f"key-{index:05d}" for index in range(placement_keys)]
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        root = Path(tmp)
        probes, churn_scans = build_fleet_workload(
            root,
            n_galleries=n_galleries,
            n_subjects=n_subjects,
            n_regions=n_regions,
            n_timepoints=n_timepoints,
            n_features=n_features,
            churn_subjects=max(2, 2 * churn_batch),
            probes_per_request=probes_per_request,
            seed=seed,
        )
        config = ServiceConfig(
            n_features=n_features,
            max_galleries=max(1, int(max_resident_galleries)),
            cache_dir=str(root / "cache"),
            retry_attempts=int(retry_attempts),
            drain_deadline_s=float(drain_deadline_s),
        )

        # The resize-free replay oracle: one plain in-process service over
        # the same persisted galleries.
        serial_registry = GalleryRegistry(root=root, config=config)
        serial = IdentificationService(registry=serial_registry, config=config)
        try:
            reference = {
                name: _response_document(
                    serial.identify(IdentifyRequest(gallery=name, scans=scans))
                )
                for name, scans in probes.items()
            }
        finally:
            serial.close()

        router = GalleryRouter(root, config=config, workers=INITIAL_WORKERS)
        steps = []
        outcomes = {
            name: {
                "ok": 0, "errors": 0, "mismatches": 0,
                "latencies_s": [], "error_samples": [],
            }
            for name in probes
        }
        churn_outcome = {"ok": 0, "resends": 0, "failed": 0, "failure_samples": []}
        try:
            stop = threading.Event()
            threads = [
                threading.Thread(
                    target=_identify_driver,
                    args=(router, name, probes[name], reference[name],
                          stop, outcomes[name]),
                )
                for name in sorted(probes)
            ]
            threads.append(threading.Thread(
                target=_churn_driver,
                args=(router, churn_scans, churn_batch, stop, churn_outcome),
            ))
            for thread in threads:
                thread.start()
            try:
                for action in SCHEDULE:
                    time.sleep(hold_s)
                    before = router.fleet.placement(keys)
                    n_before = len(router.workers)
                    if action == "add":
                        record = router.add_worker()
                    else:
                        record = router.remove_worker()
                    after = router.fleet.placement(keys)
                    n_after = len(router.workers)
                    fraction = _remap_fraction(before, after)
                    steps.append({
                        "action": action,
                        "members_before": n_before,
                        "members_after": n_after,
                        "remap_fraction": fraction,
                        "remap_bound": REMAP_FACTOR / max(n_before, n_after),
                        "record": record,
                    })
                time.sleep(hold_s)
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            resizes = router.fleet.resizes()
            final_members = list(router.workers)
            stats = router.stats()
            per_worker = stats.router["per_worker"]
        finally:
            router.close()

    latencies = [
        sample for entry in outcomes.values() for sample in entry["latencies_s"]
    ]
    totals = {
        "requests": len(latencies),
        "ok": sum(e["ok"] for e in outcomes.values()),
        "errors": sum(e["errors"] for e in outcomes.values()),
        "mismatches": sum(e["mismatches"] for e in outcomes.values()),
        "churn_ok": churn_outcome["ok"],
        "churn_resends": churn_outcome["resends"],
        "churn_failed": churn_outcome["failed"],
    }
    error_samples = [
        sample
        for entry in outcomes.values()
        for sample in entry["error_samples"][:2]
    ]
    return {
        "n_galleries": n_galleries,
        "n_subjects": n_subjects,
        "n_regions": n_regions,
        "n_timepoints": n_timepoints,
        "probes_per_request": probes_per_request,
        "hold_s": float(hold_s),
        "placement_keys": placement_keys,
        "drain_deadline_s": float(drain_deadline_s),
        "retry_attempts": int(retry_attempts),
        "schedule": list(SCHEDULE),
        "steps": steps,
        "totals": totals,
        "error_samples": error_samples[:6],
        "churn_failure_samples": churn_outcome["failure_samples"][:6],
        "min_requests_per_gallery": min(
            (e["ok"] + e["errors"] + e["mismatches"]) for e in outcomes.values()
        ),
        "bitwise_equal": totals["mismatches"] == 0,
        "latency": {
            "p50_ms": float(1e3 * np.percentile(latencies, 50)) if latencies else 0.0,
            "p99_ms": float(1e3 * np.percentile(latencies, 99)) if latencies else 0.0,
            "max_ms": float(1e3 * max(latencies)) if latencies else 0.0,
        },
        "final_members": final_members,
        "per_worker_members": sorted(per_worker),
        "resizes_completed": resizes["completed"],
        "resize_in_flight": resizes["in_flight"],
        "leaked_segments": sorted(set(_shm_segments()) - segments_before),
        "zombie_children": _router_children(),
    }


def evaluate_gates(outcome: dict) -> list:
    """The fleet-churn hard gates; returns a list of human-readable failures."""
    failures = []
    totals = outcome["totals"]
    if not outcome["bitwise_equal"]:
        failures.append(
            f"{totals['mismatches']} successful response(s) diverged from the "
            "resize-free replay (correctness must survive resizes bit-for-bit)"
        )
    if totals["errors"]:
        failures.append(
            f"{totals['errors']} client-visible identify error(s) — resizes "
            f"must be invisible to identify clients "
            f"(samples: {outcome['error_samples']})"
        )
    if totals["churn_failed"]:
        failures.append(
            f"{totals['churn_failed']} enroll(s) failed durably — an enroll "
            "racing a removal must either commit or fail safe-to-resend "
            f"(samples: {outcome['churn_failure_samples']})"
        )
    if outcome["min_requests_per_gallery"] < 1:
        failures.append("a gallery saw zero identifies (hold_s too small?)")
    for step in outcome["steps"]:
        label = (
            f"step {step['action']} "
            f"{step['members_before']}→{step['members_after']}"
        )
        if step["remap_fraction"] > step["remap_bound"]:
            failures.append(
                f"{label}: remapped {step['remap_fraction']:.3f} of keys "
                f"> bound {step['remap_bound']:.3f} (movement must stay "
                "near 1/N)"
            )
        if step["remap_fraction"] == 0.0:
            failures.append(f"{label}: no keys remapped — membership did not change")
        record = step["record"]
        if step["action"] == "remove":
            if not record.get("drained"):
                failures.append(
                    f"{label}: leaving worker did not drain cleanly "
                    f"({record.get('drain_error')})"
                )
            elif record.get("drain_s", 0.0) > (
                outcome["drain_deadline_s"] + DRAIN_SLACK_S
            ):
                failures.append(
                    f"{label}: drain took {record['drain_s']:.2f}s > deadline "
                    f"{outcome['drain_deadline_s']:.1f}s + {DRAIN_SLACK_S:.1f}s slack"
                )
    expected_final = INITIAL_WORKERS + sum(
        1 if action == "add" else -1 for action in SCHEDULE
    )
    if len(outcome["final_members"]) != expected_final:
        failures.append(
            f"final fleet has {len(outcome['final_members'])} member(s), "
            f"expected {expected_final}: {outcome['final_members']}"
        )
    if outcome["per_worker_members"] != sorted(outcome["final_members"]):
        failures.append(
            "per_worker stats block does not list exactly the final members: "
            f"{outcome['per_worker_members']} vs {outcome['final_members']}"
        )
    if outcome["resizes_completed"] != len(SCHEDULE):
        failures.append(
            f"{outcome['resizes_completed']} resize(s) recorded, "
            f"expected {len(SCHEDULE)}"
        )
    if outcome["resize_in_flight"]:
        failures.append("a resize is still marked in flight after the schedule")
    if outcome["leaked_segments"]:
        failures.append(f"leaked shm segments: {outcome['leaked_segments']}")
    if outcome["zombie_children"]:
        failures.append(f"leaked worker processes: {outcome['zombie_children']}")
    return failures


def trajectory_record(outcome: dict) -> dict:
    """The ``BENCH_fleet.json`` trajectory record of one benchmark outcome."""
    return {
        "benchmark": "fleet_churn",
        "workload": {
            "n_galleries": outcome["n_galleries"],
            "n_subjects": outcome["n_subjects"],
            "n_regions": outcome["n_regions"],
            "n_timepoints": outcome["n_timepoints"],
            "probes_per_request": outcome["probes_per_request"],
            "hold_s": outcome["hold_s"],
            "placement_keys": outcome["placement_keys"],
            "drain_deadline_s": outcome["drain_deadline_s"],
            "retry_attempts": outcome["retry_attempts"],
        },
        "schedule": outcome["schedule"],
        "steps": [
            {
                "action": step["action"],
                "members_before": step["members_before"],
                "members_after": step["members_after"],
                "remap_fraction": step["remap_fraction"],
                "remap_bound": step["remap_bound"],
                "drained": step["record"].get("drained"),
                "drain_s": step["record"].get("drain_s"),
                "warmed": step["record"].get("warmed"),
                "duration_s": step["record"].get("duration_s"),
            }
            for step in outcome["steps"]
        ],
        "totals": outcome["totals"],
        "bitwise_equal": outcome["bitwise_equal"],
        "latency": outcome["latency"],
        "final_members": outcome["final_members"],
        "resizes_completed": outcome["resizes_completed"],
        "leaked_segments": outcome["leaked_segments"],
        "zombie_children": outcome["zombie_children"],
        "gate_failures": evaluate_gates(outcome),
    }


def test_fleet_churn_gates(benchmark):
    """Acceptance churn run: full 2→3→4→3 schedule, every hard gate enforced."""
    outcome = benchmark.pedantic(run_fleet_churn_benchmark, rounds=1, iterations=1)
    failures = evaluate_gates(outcome)
    print(
        f"\nfleet churn: {outcome['totals']['ok']}/{outcome['totals']['requests']} "
        f"bit-identical, {outcome['totals']['errors']} error(s), "
        f"churn {outcome['totals']['churn_ok']}"
        f"+{outcome['totals']['churn_resends']} resend(s), "
        f"remap " + ", ".join(
            f"{s['remap_fraction']:.3f}/{s['remap_bound']:.3f}"
            for s in outcome["steps"]
        ) + f", p50 {outcome['latency']['p50_ms']:.1f} ms"
    )
    assert not failures, "fleet churn gates failed:\n- " + "\n- ".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--galleries", type=int, default=6)
    parser.add_argument("--subjects", type=int, default=10)
    parser.add_argument("--regions", type=int, default=16)
    parser.add_argument("--timepoints", type=int, default=60)
    parser.add_argument("--features", type=int, default=40)
    parser.add_argument("--probes", type=int, default=1,
                        help="probe scans per identify request")
    parser.add_argument("--hold", type=float, default=0.8,
                        help="seconds of load between membership steps")
    parser.add_argument("--keys", type=int, default=2048,
                        help="synthetic keys for the remap measurement")
    parser.add_argument("--drain-deadline", type=float,
                        default=DEFAULT_DRAIN_DEADLINE_S)
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRY_ATTEMPTS)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    outcome = run_fleet_churn_benchmark(
        n_galleries=args.galleries,
        n_subjects=args.subjects,
        n_regions=args.regions,
        n_timepoints=args.timepoints,
        n_features=min(args.features, args.regions * (args.regions - 1) // 2),
        probes_per_request=args.probes,
        hold_s=args.hold,
        placement_keys=args.keys,
        drain_deadline_s=args.drain_deadline,
        retry_attempts=args.retries,
        seed=args.seed,
    )
    for step in outcome["steps"]:
        record = step["record"]
        detail = (
            f"drained in {record.get('drain_s', 0.0):.2f}s"
            if step["action"] == "remove"
            else f"warmed {record.get('warmed', 0)} gallery(ies)"
        )
        print(
            f"step {step['action']:<6} {step['members_before']}→"
            f"{step['members_after']}: remap {step['remap_fraction']:.3f} "
            f"(bound {step['remap_bound']:.3f}), {detail}"
        )
    totals = outcome["totals"]
    print(
        f"totals      : {totals['ok']}/{totals['requests']} bit-identical, "
        f"{totals['errors']} error(s), churn {totals['churn_ok']} ok / "
        f"{totals['churn_resends']} resend(s) / {totals['churn_failed']} failed, "
        f"p50 {outcome['latency']['p50_ms']:.1f} ms / "
        f"p99 {outcome['latency']['p99_ms']:.1f} ms"
    )
    failures = evaluate_gates(outcome)
    for failure in failures:
        print(f"GATE FAIL: {failure}")
    if not failures:
        print("all fleet churn gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
