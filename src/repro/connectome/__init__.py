"""Connectome substrate: correlation matrices, vectorization, group matrices.

A functional connectome is the region-by-region correlation matrix of the
preprocessed time series (paper Section 3.1.1).  Connectomes are vectorized
(upper triangle) and stacked column-wise into *group matrices*, which are the
objects the attack's matrix analysis operates on (paper Figure 3).
"""

from repro.connectome.correlation import (
    correlation_connectome,
    partial_correlation_connectome,
    vectorize_connectome,
    devectorize_connectome,
    vector_index_to_region_pair,
)
from repro.connectome.connectome import Connectome
from repro.connectome.group import GroupMatrix, build_group_matrix
from repro.connectome.graph_metrics import (
    global_efficiency,
    graph_metric_profile,
    mean_clustering_coefficient,
    modularity,
    node_strengths,
    profile_distance,
)
from repro.connectome.similarity import (
    identification_accuracy_from_similarity,
    pairwise_similarity,
    similarity_contrast,
)

__all__ = [
    "correlation_connectome",
    "partial_correlation_connectome",
    "vectorize_connectome",
    "devectorize_connectome",
    "vector_index_to_region_pair",
    "Connectome",
    "GroupMatrix",
    "build_group_matrix",
    "pairwise_similarity",
    "similarity_contrast",
    "identification_accuracy_from_similarity",
    "node_strengths",
    "mean_clustering_coefficient",
    "global_efficiency",
    "modularity",
    "graph_metric_profile",
    "profile_distance",
]
