"""Run every experiment and assemble the EXPERIMENTS.md report."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments.config import ADHDExperimentConfig, HCPExperimentConfig
from repro.experiments.defense import defense_tradeoff
from repro.experiments.identification import (
    figure5_cross_task_matrix,
    figure9_adhd_identification,
    table2_multisite_noise,
)
from repro.experiments.inference import (
    figure6_task_prediction,
    table1_performance_prediction,
)
from repro.experiments.similarity import (
    figure1_rest_similarity,
    figure2_task_similarity,
    figure7_adhd_subtype1,
    figure8_adhd_subtype3,
)
from repro.reporting.experiment import ExperimentRecord


def run_all_experiments(
    hcp_config: Optional[HCPExperimentConfig] = None,
    adhd_config: Optional[ADHDExperimentConfig] = None,
) -> Dict[str, ExperimentRecord]:
    """Run every figure/table experiment and return the records by id."""
    hcp_config = hcp_config or HCPExperimentConfig()
    adhd_config = adhd_config or ADHDExperimentConfig()
    records: Dict[str, ExperimentRecord] = {}
    records["figure1"] = figure1_rest_similarity(hcp_config)
    records["figure2"] = figure2_task_similarity(hcp_config)
    records["figure5"] = figure5_cross_task_matrix(hcp_config)
    records["figure6"] = figure6_task_prediction(hcp_config)
    records["table1"] = table1_performance_prediction(hcp_config)
    records["figure7"] = figure7_adhd_subtype1(adhd_config)
    records["figure8"] = figure8_adhd_subtype3(adhd_config)
    records["figure9"] = figure9_adhd_identification(adhd_config)
    records["table2"] = table2_multisite_noise(hcp_config, adhd_config)
    records["defense"] = defense_tradeoff(hcp_config)
    return records


def generate_experiments_markdown(
    records: Dict[str, ExperimentRecord],
    output_path: Optional[str] = None,
    preamble: str = "",
) -> str:
    """Assemble a markdown report from experiment records.

    Parameters
    ----------
    records:
        Experiment id → record (e.g. the output of :func:`run_all_experiments`).
    output_path:
        If given, the markdown document is also written to this path.
    preamble:
        Optional introductory text inserted after the heading.
    """
    lines: List[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
    ]
    if preamble:
        lines.append(preamble)
        lines.append("")
    ordered_ids = sorted(records)
    n_holding = sum(1 for rid in ordered_ids if records[rid].shape_holds())
    lines.append(
        f"{n_holding} of {len(ordered_ids)} experiments preserve the paper's "
        "qualitative shape with the default (scaled-down) configuration."
    )
    lines.append("")
    for record_id in ordered_ids:
        lines.append(records[record_id].markdown_section())
    document = "\n".join(lines)
    if output_path is not None:
        Path(output_path).write_text(document, encoding="utf-8")
    return document
