"""Ridge and kernel ridge regression.

Used as internal baselines for the task-performance prediction experiment
(Table 1) and as the fallback regressor inside the defense utility analysis.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array, check_matrix


class RidgeRegression:
    """Ordinary ridge regression ``min ||Xw - y||^2 + alpha ||w||^2``.

    Parameters
    ----------
    alpha:
        L2 regularization strength; must be non-negative.
    fit_intercept:
        Whether to centre the data and learn an intercept.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValidationError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        """Fit on ``(n_samples, n_features)`` features and ``(n_samples,)`` targets."""
        x = check_matrix(features, name="features")
        y = check_array(targets, name="targets", ndim=1)
        if x.shape[0] != y.shape[0]:
            raise ValidationError("features and targets must have the same sample count")
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = float(y.mean())
            x_centred = x - x_mean
            y_centred = y - y_mean
        else:
            x_mean = np.zeros(x.shape[1])
            y_mean = 0.0
            x_centred, y_centred = x, y
        n_features = x.shape[1]
        gram = x_centred.T @ x_centred + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, x_centred.T @ y_centred)
        self.intercept_ = y_mean - float(x_mean @ self.coef_) if self.fit_intercept else 0.0
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for new samples."""
        if self.coef_ is None:
            raise NotFittedError("RidgeRegression must be fitted before predicting")
        x = check_matrix(features, name="features")
        if x.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"features has {x.shape[1]} columns, model expects {self.coef_.shape[0]}"
            )
        return x @ self.coef_ + self.intercept_


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Radial-basis-function kernel matrix between rows of ``a`` and ``b``."""
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    sq_dist = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * sq_dist)


def linear_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Linear kernel (``gamma`` is ignored; present for interface symmetry)."""
    return a @ b.T


class KernelRidge:
    """Kernel ridge regression with linear or RBF kernels.

    Parameters
    ----------
    alpha:
        Regularization strength.
    kernel:
        ``"linear"`` or ``"rbf"``.
    gamma:
        RBF bandwidth; ``None`` uses ``1 / n_features``.
    """

    _KERNELS: dict = {"linear": linear_kernel, "rbf": rbf_kernel}

    def __init__(self, alpha: float = 1.0, kernel: str = "rbf", gamma: Optional[float] = None):
        if alpha < 0:
            raise ValidationError(f"alpha must be non-negative, got {alpha}")
        if kernel not in self._KERNELS:
            raise ValidationError(f"kernel must be one of {sorted(self._KERNELS)}, got {kernel!r}")
        self.alpha = float(alpha)
        self.kernel = kernel
        self.gamma = gamma
        self.dual_coef_: Optional[np.ndarray] = None
        self._train_features: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    def _kernel_fn(self) -> Callable[[np.ndarray, np.ndarray, float], np.ndarray]:
        return self._KERNELS[self.kernel]

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KernelRidge":
        """Fit the dual ridge problem on the training data."""
        x = check_matrix(features, name="features")
        y = check_array(targets, name="targets", ndim=1)
        if x.shape[0] != y.shape[0]:
            raise ValidationError("features and targets must have the same sample count")
        gamma = self.gamma if self.gamma is not None else 1.0 / x.shape[1]
        self._intercept = float(y.mean())
        y_centred = y - self._intercept
        kernel_matrix = self._kernel_fn()(x, x, gamma)
        n = x.shape[0]
        self.dual_coef_ = np.linalg.solve(kernel_matrix + self.alpha * np.eye(n), y_centred)
        self._train_features = x
        self._gamma = gamma
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for new samples."""
        if self.dual_coef_ is None or self._train_features is None:
            raise NotFittedError("KernelRidge must be fitted before predicting")
        x = check_matrix(features, name="features")
        if x.shape[1] != self._train_features.shape[1]:
            raise ValidationError(
                f"features has {x.shape[1]} columns, model expects "
                f"{self._train_features.shape[1]}"
            )
        kernel_matrix = self._kernel_fn()(x, self._train_features, self._gamma)
        return kernel_matrix @ self.dual_coef_ + self._intercept
