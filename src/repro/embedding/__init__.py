"""Embedding substrate: t-SNE (paper Algorithm 2), vanilla SNE, and PCA.

The task-inference half of the attack (Section 3.3.2) embeds vectorized
connectomes into two dimensions with t-SNE and labels unknown scans by
nearest neighbours in the embedding.  Everything here is implemented from
scratch on top of NumPy.
"""

from repro.embedding.pca import PCA
from repro.embedding.perplexity import (
    conditional_probabilities,
    joint_probabilities,
    perplexity_of_distribution,
)
from repro.embedding.sne import SNE
from repro.embedding.tsne import TSNE

__all__ = [
    "PCA",
    "SNE",
    "TSNE",
    "conditional_probabilities",
    "joint_probabilities",
    "perplexity_of_distribution",
]
