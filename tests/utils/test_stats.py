"""Tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.stats import (
    correlation_matrix,
    fisher_z,
    inverse_fisher_z,
    normalized_rmse,
    pairwise_pearson,
    pearson_correlation,
    summarize,
    zscore,
)


class TestZScore:
    def test_zero_mean_unit_std(self, rng):
        data = rng.standard_normal((5, 100)) * 3.0 + 2.0
        z = zscore(data, axis=1)
        np.testing.assert_allclose(z.mean(axis=1), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=1), 1.0, atol=1e-10)

    def test_constant_rows_become_zero(self):
        data = np.vstack([np.ones(50), np.arange(50, dtype=float)])
        z = zscore(data, axis=1)
        np.testing.assert_array_equal(z[0], np.zeros(50))
        assert z[1].std() > 0

    def test_axis_zero(self, rng):
        data = rng.standard_normal((30, 4))
        z = zscore(data, axis=0)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            pearson_correlation(np.ones(5), np.ones(6))

    def test_matches_numpy(self, rng):
        x = rng.standard_normal(200)
        y = 0.3 * x + rng.standard_normal(200)
        expected = np.corrcoef(x, y)[0, 1]
        assert pearson_correlation(x, y) == pytest.approx(expected, abs=1e-10)


class TestPairwisePearson:
    def test_shape(self, rng):
        a = rng.standard_normal((50, 4))
        b = rng.standard_normal((50, 6))
        corr = pairwise_pearson(a, b)
        assert corr.shape == (4, 6)

    def test_self_similarity_diagonal_is_one(self, rng):
        a = rng.standard_normal((50, 5))
        corr = pairwise_pearson(a)
        np.testing.assert_allclose(np.diag(corr), 1.0, atol=1e-10)

    def test_values_bounded(self, rng):
        a = rng.standard_normal((30, 8))
        corr = pairwise_pearson(a)
        assert np.all(corr <= 1.0 + 1e-12)
        assert np.all(corr >= -1.0 - 1e-12)

    def test_constant_column_gives_zero_row(self, rng):
        a = rng.standard_normal((30, 3))
        a[:, 1] = 5.0
        corr = pairwise_pearson(a)
        np.testing.assert_array_equal(corr[1, [0, 2]], 0.0)

    def test_feature_mismatch_raises(self, rng):
        with pytest.raises(ValidationError):
            pairwise_pearson(rng.standard_normal((10, 2)), rng.standard_normal((12, 2)))

    def test_matches_corrcoef(self, rng):
        a = rng.standard_normal((40, 5))
        corr = pairwise_pearson(a)
        expected = np.corrcoef(a.T)
        np.testing.assert_allclose(corr, expected, atol=1e-10)


class TestCorrelationMatrix:
    def test_is_symmetric_with_unit_diagonal(self, rng):
        ts = rng.standard_normal((8, 100))
        corr = correlation_matrix(ts)
        np.testing.assert_allclose(corr, corr.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_constant_region_handled(self, rng):
        ts = rng.standard_normal((4, 60))
        ts[2] = 3.0
        corr = correlation_matrix(ts)
        assert corr[2, 2] == 1.0
        np.testing.assert_array_equal(corr[2, [0, 1, 3]], 0.0)


class TestFisher:
    def test_roundtrip(self, rng):
        r = rng.uniform(-0.95, 0.95, size=20)
        np.testing.assert_allclose(inverse_fisher_z(fisher_z(r)), r, atol=1e-10)

    def test_clipping_handles_exact_one(self):
        assert np.isfinite(fisher_z(np.array([1.0]))).all()


class TestNormalizedRmse:
    def test_zero_for_perfect_prediction(self):
        y = np.arange(10.0)
        assert normalized_rmse(y, y) == 0.0

    def test_range_normalization(self):
        y_true = np.array([0.0, 10.0])
        y_pred = np.array([1.0, 9.0])
        assert normalized_rmse(y_true, y_pred, normalization="range") == pytest.approx(0.1)

    def test_mean_normalization(self):
        y_true = np.array([10.0, 10.0, 10.0])
        y_pred = np.array([11.0, 9.0, 11.0])
        expected = np.sqrt(np.mean([1.0, 1.0, 1.0])) / 10.0
        assert normalized_rmse(y_true, y_pred, normalization="mean") == pytest.approx(expected)

    def test_invalid_normalization(self):
        with pytest.raises(ValidationError):
            normalized_rmse(np.ones(3), np.ones(3), normalization="max")

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            normalized_rmse(np.ones(3), np.ones(4))


class TestSummarize:
    def test_mean_and_std(self):
        mean, std = summarize(np.array([1.0, 2.0, 3.0]))
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            summarize(np.array([]))
