"""The full imaging path: scanner simulation, preprocessing, attack.

The other examples work directly with region-level time series (the fast
path).  This one exercises the complete workflow of paper Figures 3 and 4:
raw 4-D acquisitions with motion, drift, bias fields and skull tissue are
cleaned by the preprocessing pipeline, parcellated with a synthetic atlas,
turned into connectomes, and finally attacked.

Run with::

    python examples/imaging_pipeline.py
"""

import numpy as np

from repro import LeverageScoreAttack
from repro.connectome import build_group_matrix
from repro.connectome.connectome import Connectome
from repro.datasets.subject import SubjectPopulation
from repro.datasets.tasks import HCP_TASKS
from repro.imaging import BrainPhantom, ScannerSimulator, random_parcellation
from repro.imaging.preprocessing import default_hcp_pipeline


def main() -> None:
    n_subjects = 8
    phantom = BrainPhantom(shape=(24, 28, 24))
    atlas = random_parcellation(phantom, n_regions=48, random_state=0)
    population = SubjectPopulation(
        n_subjects=n_subjects, n_regions=atlas.n_regions, random_state=1
    )
    simulator = ScannerSimulator(phantom, atlas)
    pipeline = default_hcp_pipeline(atlas, bandpass=False, global_signal_regression=False)

    print(
        f"Phantom {phantom.shape} with {phantom.n_brain_voxels} brain voxels, "
        f"{atlas.n_regions}-region atlas, {n_subjects} subjects"
    )

    def acquire_session(session: str, seed_offset: int):
        connectomes = []
        for index in range(n_subjects):
            signals = population.generate_timeseries(
                index, HCP_TASKS["REST"], session=session, n_timepoints=140
            )
            volume = simulator.acquire(
                signals,
                random_state=seed_offset + index,
                subject_id=population.subject(index).subject_id,
                session=session,
                task="REST",
            )
            recovered = pipeline.run(volume)
            connectomes.append(
                Connectome.from_timeseries(
                    recovered,
                    subject_id=volume.subject_id,
                    session=session,
                    task="REST",
                )
            )
        return build_group_matrix(connectomes)

    print("Simulating and preprocessing session 1 (identified) ...")
    reference = acquire_session("SESSION1", seed_offset=100)
    print("Simulating and preprocessing session 2 (anonymous) ...")
    target = acquire_session("SESSION2", seed_offset=200)

    attack = LeverageScoreAttack(n_features=80)
    result = attack.fit_identify(reference, target)
    chance = 100.0 / n_subjects
    print()
    print(
        f"Identification accuracy through the full imaging chain: "
        f"{100 * result.accuracy():.1f} % (chance level {chance:.1f} %)"
    )
    print("Similarity matrix (rows = identified subjects, columns = anonymous scans):")
    with np.printoptions(precision=2, suppress=True):
        print(result.similarity)


if __name__ == "__main__":
    main()
