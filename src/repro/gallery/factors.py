"""Cached SVD factors and leverage scores for the gallery subsystem.

Fitting the Principal Features Subspace is the expensive part of the attack:
one economy (or randomized) SVD of the reference group matrix.  These helpers
compute exactly the same factors as :mod:`repro.linalg.leverage` but route
them through a content-keyed :class:`~repro.runtime.cache.ArtifactCache`
under the reserved ``svd`` and ``leverage`` kinds, so refitting the same
reference data — in another pipeline, another worker sharing the disk tier,
or another session — is a cache hit instead of a factorization.

The numerical results are bit-identical to the uncached paths: the same SVD
routine runs on the same matrix, and the leverage scores are the same row
norms of the same basis.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.linalg.leverage import (
    PrincipalFeaturesSubspace,
    leverage_scores,
    rank_k_leverage_scores,
)
from repro.linalg.svd import economy_svd, randomized_svd
from repro.runtime.cache import ArtifactCache
from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike
from repro.utils.validation import check_matrix, check_positive_int

#: Sentinel for random states that cannot be rendered into a stable cache key.
_UNSTABLE = object()


def _stable_seed(random_state: RandomStateLike):
    """Render a random state into a cache-key-stable value.

    ``None`` and integers are stable; generator objects are not (their state
    advances), so factor caching is bypassed for them when the backend is
    randomized.
    """
    if random_state is None:
        return None
    if isinstance(random_state, (int, np.integer)):
        return int(random_state)
    return _UNSTABLE


def cacheable_fit(
    rank: Optional[int], method: str, random_state: RandomStateLike
) -> bool:
    """Whether a fit with these parameters can be served from the cache.

    Only the randomized backend draws randomness, and only an *integer* seed
    makes that draw reproducible from a content key.  Generator objects
    (state advances) and ``None`` (a fresh nondeterministic draw every call)
    cannot be keyed — caching either would serve one draw's artifacts as if
    they were another's — so those fits bypass the cache entirely.
    """
    if method != "randomized" or rank is None:
        return True
    seed = _stable_seed(random_state)
    return seed is not _UNSTABLE and seed is not None


def _factor_params(rank: Optional[int], method: str, seed) -> dict:
    """Canonical key parameters shared by the ``svd`` and ``leverage`` kinds."""
    return {
        "rank": -1 if rank is None else int(rank),
        "method": str(method),
        "seed": -1 if seed is None else int(seed),
    }


def _compute_factors(
    data: np.ndarray,
    rank: Optional[int],
    method: str,
    random_state: RandomStateLike,
) -> Tuple[np.ndarray, np.ndarray]:
    """The uncached factorization, matching :mod:`repro.linalg.leverage`.

    Returns the left singular-vector block used for leverage scores and the
    corresponding singular values.  ``rank=None`` keeps the full economy
    basis (filtering happens at score time, exactly like
    :func:`~repro.linalg.leverage.leverage_scores`).
    """
    if method not in ("exact", "randomized"):
        raise ValidationError("method must be 'exact' or 'randomized'")
    if rank is None or method == "exact":
        u, s, _ = economy_svd(data)
        if rank is not None:
            u, s = u[:, :rank], s[:rank]
        return u, s
    u, s, _ = randomized_svd(data, rank=rank, random_state=random_state)
    return u, s


def cached_svd_factors(
    data: np.ndarray,
    rank: Optional[int] = None,
    method: str = "exact",
    random_state: RandomStateLike = None,
    cache: Optional[ArtifactCache] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Left singular vectors and singular values, served from the ``svd`` kind.

    Parameters
    ----------
    data:
        ``(n_features, n_subjects)`` group-matrix data block.
    rank:
        ``None`` for the full economy basis, or the truncation rank.
    method:
        ``"exact"`` or ``"randomized"`` SVD backend (randomized requires a
        rank).
    random_state:
        Seed for the randomized backend; generators bypass the cache because
        their draw is not reproducible from a key.
    cache:
        Artifact cache; ``None`` computes directly.
    """
    a = check_matrix(data, name="data")
    if rank is not None:
        rank = check_positive_int(rank, name="rank")
        if rank > min(a.shape):
            raise ValidationError(f"rank must be <= {min(a.shape)}, got {rank}")
    if cache is None or not cacheable_fit(rank, method, random_state):
        return _compute_factors(a, rank, method, random_state)

    seed = _stable_seed(random_state)
    params = _factor_params(rank, method, seed if seed is not _UNSTABLE else None)
    u_key = cache.key("svd", a, factor="u", **params)
    s_key = cache.key("svd", a, factor="s", **params)
    u = cache.get("svd", u_key)
    s = cache.get("svd", s_key)
    if u is None or s is None:
        u, s = _compute_factors(a, rank, method, random_state)
        cache.put("svd", u_key, u)
        cache.put("svd", s_key, s)
    return u, s


def leverage_cache_key(
    cache: ArtifactCache,
    data: np.ndarray,
    rank: Optional[int] = None,
    method: str = "exact",
    random_state: RandomStateLike = None,
) -> str:
    """Content key of the leverage-score vector for ``data``.

    Exposed so :class:`~repro.gallery.reference.ReferenceGallery` can detect
    whether enrollment actually changed the fitted state (same key = the
    cached scores are still the right ones, no re-fit needed).
    """
    seed = _stable_seed(random_state)
    params = _factor_params(rank, method, seed if seed is not _UNSTABLE else None)
    return cache.key("leverage", np.asarray(data), **params)


def cached_leverage_scores(
    data: np.ndarray,
    rank: Optional[int] = None,
    method: str = "exact",
    random_state: RandomStateLike = None,
    cache: Optional[ArtifactCache] = None,
) -> np.ndarray:
    """Row leverage scores of ``data``, served from the ``leverage`` kind.

    Identical to :func:`repro.linalg.leverage.leverage_scores` (``rank=None``)
    or :func:`~repro.linalg.leverage.rank_k_leverage_scores` otherwise, but a
    repeat call with the same content is a cache hit, and a miss reuses any
    cached ``svd`` factors instead of refactorizing.
    """
    a = check_matrix(data, name="data")
    if cache is None or not cacheable_fit(rank, method, random_state):
        if rank is None:
            return leverage_scores(a)
        return rank_k_leverage_scores(a, rank=rank, method=method, random_state=random_state)

    def compute() -> np.ndarray:
        u, s = cached_svd_factors(
            a, rank=rank, method=method, random_state=random_state, cache=cache
        )
        if rank is None:
            positive = s > s.max() * 1e-12 if s.size else np.zeros(0, dtype=bool)
            u = u[:, positive]
        return np.sum(u * u, axis=1)

    key = leverage_cache_key(cache, a, rank=rank, method=method, random_state=random_state)
    return cache.get_or_compute("leverage", key, compute)


def fit_principal_features_cached(
    data: np.ndarray,
    n_features: int,
    rank: Optional[int] = None,
    method: str = "exact",
    random_state: RandomStateLike = None,
    cache: Optional[ArtifactCache] = None,
) -> PrincipalFeaturesSubspace:
    """A fitted :class:`PrincipalFeaturesSubspace` built from cached scores.

    Equivalent to ``PrincipalFeaturesSubspace(...).fit(data)`` — the same
    scores, the same ``argsort`` tie-breaking, the same selected indices —
    but the leverage scores (and the SVD behind them) come from the cache, so
    two selectors with different ``n_features`` over the same data share one
    factorization.
    """
    a = check_matrix(data, name="data")
    n_features = check_positive_int(n_features, name="n_features")
    if n_features > a.shape[0]:
        raise ValidationError(
            f"n_features ({n_features}) exceeds feature count ({a.shape[0]})"
        )
    selector = PrincipalFeaturesSubspace(
        n_features=n_features, rank=rank, method=method, random_state=random_state
    )
    if cache is None:
        return selector.fit(a)
    scores = cached_leverage_scores(
        a, rank=rank, method=method, random_state=random_state, cache=cache
    )
    selector.scores_ = scores
    selector.selected_indices_ = np.argsort(scores)[::-1][:n_features]
    return selector
