"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.connectome.correlation import (
    devectorize_connectome,
    n_regions_from_vector_length,
    vectorize_connectome,
)
from repro.linalg.leverage import leverage_scores, principal_features
from repro.linalg.sampling import l2_distribution, uniform_distribution
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.model_selection import KFold, train_test_split
from repro.utils.stats import (
    correlation_matrix,
    fisher_z,
    inverse_fisher_z,
    pairwise_pearson,
    zscore,
)

# Bounded float arrays keep the numerics well conditioned.
_finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def _matrix_strategy(min_rows=2, max_rows=12, min_cols=2, max_cols=8):
    return st.tuples(
        st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
    ).flatmap(
        lambda shape: arrays(np.float64, shape, elements=_finite_floats)
    )


class TestStatsProperties:
    @given(data=_matrix_strategy(min_cols=3))
    @settings(max_examples=40, deadline=None)
    def test_zscore_rows_have_zero_mean(self, data):
        z = zscore(data, axis=1)
        assert np.all(np.abs(z.mean(axis=1)) < 1e-8)
        assert np.all(np.isfinite(z))

    @given(data=_matrix_strategy(min_rows=3, min_cols=4))
    @settings(max_examples=40, deadline=None)
    def test_correlation_matrix_is_valid(self, data):
        corr = correlation_matrix(data)
        assert np.allclose(corr, corr.T, atol=1e-10)
        assert np.all(corr <= 1.0 + 1e-9)
        assert np.all(corr >= -1.0 - 1e-9)
        assert np.allclose(np.diag(corr), 1.0)

    @given(data=_matrix_strategy(min_rows=4, min_cols=2))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_pearson_bounded_and_symmetric_for_self(self, data):
        corr = pairwise_pearson(data)
        assert corr.shape == (data.shape[1], data.shape[1])
        assert np.all(np.abs(corr) <= 1.0 + 1e-9)
        assert np.allclose(corr, corr.T, atol=1e-9)

    @given(
        r=arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(min_value=-0.999, max_value=0.999),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fisher_roundtrip(self, r):
        np.testing.assert_allclose(inverse_fisher_z(fisher_z(r)), r, atol=1e-7)


class TestConnectomeProperties:
    @given(n_regions=st.integers(2, 20), seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_vectorize_devectorize_roundtrip(self, n_regions, seed):
        rng = np.random.default_rng(seed)
        ts = rng.standard_normal((n_regions, 30))
        connectome = correlation_matrix(ts)
        vector = vectorize_connectome(connectome)
        assert vector.shape == (n_regions * (n_regions - 1) // 2,)
        rebuilt = devectorize_connectome(vector)
        np.testing.assert_allclose(rebuilt, connectome, atol=1e-10)

    @given(n_regions=st.integers(2, 200))
    @settings(max_examples=60, deadline=None)
    def test_vector_length_inversion(self, n_regions):
        length = n_regions * (n_regions - 1) // 2
        assert n_regions_from_vector_length(length) == n_regions


class TestLinalgProperties:
    @given(data=_matrix_strategy(min_rows=4, max_rows=30, min_cols=2, max_cols=6))
    @settings(max_examples=30, deadline=None)
    def test_leverage_scores_bounded_and_sum_at_most_column_count(self, data):
        scores = leverage_scores(data)
        assert np.all(scores >= -1e-9)
        assert np.all(scores <= 1.0 + 1e-9)
        # The scores sum to the (numerical) rank, which never exceeds the
        # number of columns.
        assert scores.sum() <= data.shape[1] + 1e-6

    @given(data=_matrix_strategy(min_rows=6, max_rows=30), k=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_principal_features_unique_and_in_range(self, data, k):
        k = min(k, data.shape[0])
        indices = principal_features(data, n_features=k)
        assert len(set(indices.tolist())) == k
        assert indices.min() >= 0 and indices.max() < data.shape[0]

    @given(data=_matrix_strategy(min_rows=3, max_rows=25))
    @settings(max_examples=30, deadline=None)
    def test_sampling_distributions_are_probabilities(self, data):
        uniform = uniform_distribution(data)
        assert abs(uniform.sum() - 1.0) < 1e-9
        if np.any(np.sum(data * data, axis=1) > 0):
            l2 = l2_distribution(data)
            assert abs(l2.sum() - 1.0) < 1e-9
            assert np.all(l2 >= 0)


class TestModelSelectionProperties:
    @given(
        n_samples=st.integers(2, 200),
        test_fraction=st.floats(0.05, 0.95),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_train_test_split_partitions(self, n_samples, test_fraction, seed):
        train, test = train_test_split(n_samples, test_fraction=test_fraction, random_state=seed)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.arange(n_samples))
        assert len(train) >= 1 and len(test) >= 1

    @given(
        n_samples=st.integers(4, 100),
        n_splits=st.integers(2, 4),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_kfold_partitions(self, n_samples, n_splits, seed):
        folds = list(KFold(n_splits=n_splits, random_state=seed).split(n_samples))
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        np.testing.assert_array_equal(all_test, np.arange(n_samples))


class TestMetricProperties:
    @given(
        labels=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50),
        predictions=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_confusion_matrix_total_matches_sample_count(self, labels, predictions):
        n = min(len(labels), len(predictions))
        labels, predictions = labels[:n], predictions[:n]
        matrix, _ = confusion_matrix(labels, predictions)
        assert matrix.sum() == n
        accuracy = accuracy_score(labels, predictions)
        assert np.trace(matrix) / n == accuracy
