"""End-to-end preprocessing pipeline (paper Figure 4).

The pipeline chains spatial steps (operating on volumes), parcellation, and
temporal steps (operating on region-by-time matrices), turning a raw
simulated acquisition into the clean connectome input the attack consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

import numpy as np

from repro.exceptions import PreprocessingError
from repro.imaging.atlas import Atlas
from repro.imaging.parcellation import parcellate
from repro.imaging.preprocessing.field_correction import BiasFieldCorrection
from repro.imaging.preprocessing.motion import MotionCorrection
from repro.imaging.preprocessing.normalization import ZScoreNormalization
from repro.imaging.preprocessing.registration import RegistrationToTemplate
from repro.imaging.preprocessing.skull_strip import SkullStripping
from repro.imaging.preprocessing.temporal import (
    BandpassFilter,
    Detrend,
    GlobalSignalRegression,
    HighPassFilter,
)
from repro.imaging.volume import Volume4D


class SpatialStep(Protocol):
    """Protocol for steps that map a volume to a volume."""

    def apply(self, volume: Volume4D) -> Volume4D:  # pragma: no cover - protocol
        ...


class TemporalStep(Protocol):
    """Protocol for steps that map a (regions, time) matrix to another."""

    def apply(self, timeseries: np.ndarray) -> np.ndarray:  # pragma: no cover - protocol
        ...


@dataclass
class PreprocessingPipeline:
    """Ordered spatial-then-temporal preprocessing of a functional scan.

    Parameters
    ----------
    atlas:
        Parcellation applied between the spatial and temporal phases.
    spatial_steps:
        Steps applied to the 4-D volume, in order.
    temporal_steps:
        Steps applied to the parcellated ``(regions, time)`` matrix, in order.
        Steps whose ``apply`` accepts a ``tr`` keyword (frequency filters)
        automatically receive the volume's repetition time.
    use_estimated_brain_mask:
        If true and a :class:`SkullStripping` step is present, its estimated
        brain mask restricts which voxels enter the parcellation.
    """

    atlas: Atlas
    spatial_steps: List[SpatialStep] = field(default_factory=list)
    temporal_steps: List[TemporalStep] = field(default_factory=list)
    use_estimated_brain_mask: bool = True

    def run_spatial(self, volume: Volume4D) -> Volume4D:
        """Apply only the spatial phase and return the cleaned volume."""
        if not isinstance(volume, Volume4D):
            raise PreprocessingError("PreprocessingPipeline expects a Volume4D input")
        current = volume
        for step in self.spatial_steps:
            current = step.apply(current)
        return current

    def run_temporal(self, timeseries: np.ndarray, tr: float) -> np.ndarray:
        """Apply only the temporal phase to a ``(regions, time)`` matrix."""
        current = np.asarray(timeseries, dtype=np.float64)
        for step in self.temporal_steps:
            current = self._apply_temporal_step(step, current, tr)
        return current

    def run(self, volume: Volume4D) -> np.ndarray:
        """Full pipeline: spatial cleanup, parcellation, temporal cleanup.

        Returns
        -------
        numpy.ndarray
            ``(n_regions, n_timepoints)`` preprocessed region time series.
        """
        cleaned = self.run_spatial(volume)
        mask = self._estimated_brain_mask()
        timeseries = parcellate(cleaned, self.atlas, mask=mask)
        return self.run_temporal(timeseries, tr=volume.tr)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _estimated_brain_mask(self) -> Optional[np.ndarray]:
        if not self.use_estimated_brain_mask:
            return None
        for step in self.spatial_steps:
            mask = getattr(step, "brain_mask_", None)
            if mask is not None:
                return mask
        return None

    @staticmethod
    def _apply_temporal_step(step, timeseries: np.ndarray, tr: float) -> np.ndarray:
        """Call a temporal step, forwarding ``tr`` when the step accepts it."""
        try:
            return step.apply(timeseries, tr=tr)
        except TypeError:
            return step.apply(timeseries)


def default_hcp_pipeline(
    atlas: Atlas,
    bandpass: bool = True,
    global_signal_regression: bool = True,
    motion_max_shift: int = 1,
) -> PreprocessingPipeline:
    """The HCP-style "minimal preprocessing pipeline" used in the experiments.

    Matches the paper's description for resting-state scans: motion
    correction, skull stripping, bias-field correction, parcellation with the
    Glasser-like atlas, detrending, 0.008-0.1 Hz band-pass, global signal
    regression, and z-scoring.
    """
    temporal_steps: List[TemporalStep] = [Detrend(order=1)]
    if bandpass:
        temporal_steps.append(BandpassFilter(low_hz=0.008, high_hz=0.1))
    if global_signal_regression:
        temporal_steps.append(GlobalSignalRegression())
    temporal_steps.append(ZScoreNormalization())
    return PreprocessingPipeline(
        atlas=atlas,
        spatial_steps=[
            MotionCorrection(max_shift=motion_max_shift),
            RegistrationToTemplate(
                template_shape=atlas.spatial_shape,
                template_mask=atlas.brain_mask(),
            ),
            SkullStripping(),
            BiasFieldCorrection(),
        ],
        temporal_steps=temporal_steps,
    )


def default_adhd_pipeline(atlas: Atlas) -> PreprocessingPipeline:
    """The Burner-style pipeline used for the ADHD-200 cohort.

    Uses a gentler high-pass (200 s) instead of the resting-state band-pass
    and omits global signal regression, matching the paper's description of
    the task/clinical preprocessing variants.
    """
    return PreprocessingPipeline(
        atlas=atlas,
        spatial_steps=[
            MotionCorrection(max_shift=1),
            RegistrationToTemplate(
                template_shape=atlas.spatial_shape,
                template_mask=atlas.brain_mask(),
            ),
            SkullStripping(),
            BiasFieldCorrection(),
        ],
        temporal_steps=[
            Detrend(order=2),
            HighPassFilter(cutoff_seconds=200.0),
            ZScoreNormalization(),
        ],
    )
