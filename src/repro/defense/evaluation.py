"""Privacy/utility evaluation of defenses.

Privacy is measured as the drop in the attack's identification accuracy after
the defense is applied to the published (target) dataset.  Utility is
measured as how well group-level connectome statistics are preserved: the
correlation between the published dataset's mean connectome before and after
protection — a proxy for the downstream analyses the paper worries about
(lesion detection, group comparisons, etc. operate on exactly these
aggregate statistics).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.connectome.connectome import Connectome
from repro.connectome.correlation import devectorize_connectome
from repro.connectome.graph_metrics import graph_metric_profile, profile_distance
from repro.connectome.group import GroupMatrix
from repro.defense.noise_injection import SignatureNoiseDefense
from repro.exceptions import ValidationError
from repro.gallery.reference import ReferenceGallery
from repro.utils.rng import RandomStateLike
from repro.utils.stats import pearson_correlation


def _utility_score(original: GroupMatrix, protected: GroupMatrix) -> float:
    """Similarity of group-level statistics before and after protection."""
    original_mean = original.data.mean(axis=1)
    protected_mean = protected.data.mean(axis=1)
    return pearson_correlation(original_mean, protected_mean)


def _mean_connectome(group: GroupMatrix) -> Connectome:
    """Group-average connectome rebuilt from the mean feature vector."""
    mean_vector = np.clip(group.data.mean(axis=1), -1.0, 1.0)
    matrix = devectorize_connectome(mean_vector)
    return Connectome(matrix=matrix, subject_id="group-mean")


def _graph_utility_score(
    original: GroupMatrix, protected: GroupMatrix, threshold: float = 0.2
) -> float:
    """Downstream-analysis utility: similarity of graph-metric profiles.

    Connectomics studies compare graph metrics (strength, clustering,
    efficiency, modularity) between groups; if the defense leaves the
    group-mean connectome's metric profile unchanged, those analyses are
    unaffected.  Returns ``1 - relative profile distance`` so 1.0 means
    perfectly preserved.
    """
    original_profile = graph_metric_profile(_mean_connectome(original), threshold=threshold)
    protected_profile = graph_metric_profile(_mean_connectome(protected), threshold=threshold)
    return 1.0 - profile_distance(original_profile, protected_profile)


def evaluate_defense(
    reference: GroupMatrix,
    target: GroupMatrix,
    defense: SignatureNoiseDefense,
    attack_features: int = 100,
    include_graph_utility: bool = True,
    gallery: Optional[ReferenceGallery] = None,
) -> Dict[str, float]:
    """Attack accuracy and utility before/after protecting the target dataset.

    The attacker is assumed to hold the unprotected reference dataset; the
    defense is applied to the published target dataset only.  Two utility
    measures are reported: the correlation of mean connectomes
    (``utility``) and, optionally, the preservation of graph-metric profiles
    (``graph_utility``), the quantity the paper's discussion highlights as
    the constraint any practical defense must satisfy.

    Pass a pre-fitted ``gallery`` (as :func:`defense_tradeoff_curve` does) to
    reuse the fitted selector across evaluations instead of re-fitting the
    attack on the same reference every call.
    """
    if gallery is None:
        gallery = ReferenceGallery(
            reference, n_features=min(attack_features, reference.n_features)
        )

    baseline_accuracy = gallery.identify_group(target).accuracy()
    protected_target = defense.protect(target)
    protected_accuracy = gallery.identify_group(protected_target).accuracy()

    outcome = {
        "baseline_accuracy": baseline_accuracy,
        "protected_accuracy": protected_accuracy,
        "accuracy_drop": baseline_accuracy - protected_accuracy,
        "utility": _utility_score(target, protected_target),
        "n_signature_features": float(
            defense.signature_features_.shape[0]
            if defense.signature_features_ is not None
            else 0
        ),
    }
    if include_graph_utility:
        outcome["graph_utility"] = _graph_utility_score(target, protected_target)
    return outcome


def defense_tradeoff_curve(
    reference: GroupMatrix,
    target: GroupMatrix,
    noise_scales: Sequence[float],
    n_signature_features: int = 100,
    attack_features: int = 100,
    random_state: RandomStateLike = None,
) -> Dict[str, List[float]]:
    """Sweep the defense noise scale and record the privacy/utility trade-off.

    The attacker's gallery is fitted once on the reference and reused across
    the whole sweep — only the defense (and the protected identify) runs per
    noise scale.
    """
    if not noise_scales:
        raise ValidationError("noise_scales must not be empty")
    gallery = ReferenceGallery(
        reference, n_features=min(attack_features, reference.n_features)
    )
    accuracies: List[float] = []
    utilities: List[float] = []
    for scale in noise_scales:
        defense = SignatureNoiseDefense(
            n_features=n_signature_features,
            noise_scale=float(scale),
            strategy="noise",
            random_state=random_state,
        )
        outcome = evaluate_defense(
            reference, target, defense, attack_features=attack_features, gallery=gallery
        )
        accuracies.append(outcome["protected_accuracy"])
        utilities.append(outcome["utility"])
    return {
        "noise_scales": [float(s) for s in noise_scales],
        "attack_accuracy": accuracies,
        "utility": utilities,
    }
