"""Benchmark: aggregate warm-identify throughput of the routed fleet vs one process.

One :class:`~repro.service.IdentificationService` is one process, one GIL,
and one residency budget — the scale-out blockers the
:class:`~repro.service.GalleryRouter` removes by partitioning gallery names
across worker processes on a consistent-hash ring
(:mod:`repro.service.router`).  This benchmark pins the two claims that make
the router worth shipping:

* **Throughput scales.**  The many-gallery workload models a multi-tenant
  deployment: 16 galleries, each driven by its own client thread issuing
  warm identifies, against workers whose memory fits
  ``max_resident_galleries`` resident galleries (the PR-4 TTL/LRU policy,
  applied per worker).  A single worker cannot keep the 16-gallery working
  set resident and thrashes gallery reloads on the majority of requests; a
  4-worker fleet holds 4 galleries per worker — the whole working set —
  resident, and on multi-core hosts additionally serves its shards on 4
  CPUs in parallel.  The fleet must deliver at least
  ``DEFAULT_MIN_SPEEDUP``x the aggregate requests/second of the 1-worker
  baseline; the residency effect alone clears the bound on a single-core
  box, CPU parallelism widens it on real hardware.  The workload is
  placement-balanced on purpose — gallery names are chosen so the
  acceptance ring spreads them evenly across the 4 workers — so the
  measurement isolates residency + compute scaling from hash-placement
  variance, which ``tests/service/test_ring.py`` pins separately.
* **Routing changes nothing.**  Every routed response — over the raw IPC
  transport and over routed HTTP under *both* wire codecs — must be
  bit-identical to the same request served by a single-process
  ``IdentificationService`` over the same on-disk galleries.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_router_scaling.py \
        --galleries 4 --subjects 8 --requests 4 --min-speedup 0
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets.hcp import HCPLikeDataset
from repro.service import (
    BackgroundHttpServer,
    GalleryRegistry,
    GalleryRouter,
    IdentificationService,
    IdentifyRequest,
    ServiceClient,
    ServiceConfig,
)
from repro.service.router import HashRing

#: Required aggregate warm-identify speedup of the 4-worker fleet over the
#: 1-worker fleet at the acceptance workload.  Four workers buy 4x the
#: aggregate gallery residency (every shard stays warm instead of thrashing
#: the per-worker TTL/LRU cap) and, on multi-core hosts, ~4x the serving
#: CPU; 2x is the floor that proves real scale-out on any hardware.
DEFAULT_MIN_SPEEDUP = 2.0

#: Per-worker residency cap of the acceptance workload (the memory model: a
#: worker box fits 4 resident galleries).  16 galleries / cap 4 means the
#: 1-worker baseline reloads on most requests while the 4-worker fleet
#: keeps every shard resident.
DEFAULT_MAX_RESIDENT = 4

#: Fleet sizes compared: single worker (the per-process baseline — the same
#: serving stack with no parallelism) vs the acceptance fleet.
BASELINE_WORKERS = 1
FLEET_WORKERS = 4

#: Codecs exercised on the routed-HTTP bit-identity check.
CODECS = ("json", "binary")


def balanced_gallery_names(n_galleries: int, workers: int = FLEET_WORKERS) -> list:
    """``n_galleries`` names the acceptance ring spreads evenly over ``workers``.

    Placement is a deterministic function of the name (sha256), so the
    selection is stable: walk ``gal-000, gal-001, …`` and keep names
    round-robin across the workers the ring assigns them to, until every
    worker owns ``n_galleries / workers`` of the kept names.
    """
    ring = HashRing([f"worker-{index}" for index in range(workers)])
    per_worker = {member: [] for member in ring.members}
    quota, remainder = divmod(n_galleries, workers)
    candidate = 0
    names = []
    while len(names) < n_galleries:
        name = f"gal-{candidate:03d}"
        candidate += 1
        owner = ring.lookup(name)
        cap = quota + (1 if remainder else 0)
        if len(per_worker[owner]) >= cap:
            continue
        per_worker[owner].append(name)
        names.append(name)
    return sorted(names)


def build_fleet_workload(
    root: Path,
    n_galleries: int,
    n_subjects: int,
    n_regions: int,
    n_timepoints: int,
    n_features: int,
    probes_per_request: int = 1,
    seed: int = 0,
):
    """Persist ``n_galleries`` distinct galleries under ``root``; return probes.

    Each gallery gets its own synthetic cohort (offset seeds) and one probe
    scan list reused for every warm request against it.
    """
    config = ServiceConfig(n_features=n_features)
    probes = {}
    for index, name in enumerate(balanced_gallery_names(n_galleries)):
        dataset = HCPLikeDataset(
            n_subjects=n_subjects,
            n_regions=n_regions,
            n_timepoints=n_timepoints,
            random_state=seed + 101 * index,
        )
        registry = GalleryRegistry(root=root, config=config)
        try:
            registry.build(name, dataset.generate_session("REST", encoding="LR", day=1))
            registry.persist(name)
        finally:
            registry.close()
        probe_session = dataset.generate_session("REST", encoding="RL", day=2)
        probes[name] = list(probe_session[:probes_per_request])
    return probes


def _response_document(response) -> dict:
    """A response's comparable document: everything but per-run noise."""
    document = response.to_dict()
    document.pop("request_id", None)
    document.pop("timings", None)
    return document


def _drive_fleet(router, probes, requests_per_gallery: int):
    """One measured round: one driver thread per gallery, warm identifies.

    Every thread issues its gallery's requests sequentially (a client
    serving its own tenant); aggregate throughput is total requests over the
    wall-clock of the slowest thread.  Returns ``(responses, elapsed_s)``.
    """
    names = sorted(probes)
    responses = {name: [] for name in names}
    barrier = threading.Barrier(len(names) + 1)

    def worker(name: str):
        barrier.wait()
        for _ in range(requests_per_gallery):
            responses[name].append(
                router.identify(IdentifyRequest(gallery=name, scans=probes[name]))
            )

    threads = [threading.Thread(target=worker, args=(name,)) for name in names]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return responses, elapsed


def run_router_benchmark(
    n_galleries: int = 16,
    n_subjects: int = 96,
    n_regions: int = 32,
    n_timepoints: int = 100,
    n_features: int = 60,
    requests_per_gallery: int = 6,
    probes_per_request: int = 1,
    max_resident_galleries: int = DEFAULT_MAX_RESIDENT,
    repeats: int = 3,
    seed: int = 0,
    fleet_workers: int = FLEET_WORKERS,
    check_http_codecs: bool = True,
) -> dict:
    """Measure aggregate warm throughput per fleet size + bit-identity.

    Every fleet serves the identical request load after an untimed warm-up
    round, under the ``max_resident_galleries`` per-worker residency cap;
    the best of ``repeats`` timed rounds is kept.  Bit-identity against a
    single-process service over the same on-disk galleries is asserted on
    every response of every timed round, and (optionally) once more over
    routed HTTP under both wire codecs.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if n_galleries < 1:
        raise ValueError(f"n_galleries must be >= 1, got {n_galleries}")
    config = ServiceConfig(
        n_features=n_features,
        max_galleries=max(1, int(max_resident_galleries)),
    )
    with tempfile.TemporaryDirectory(prefix="bench-router-") as tmp:
        root = Path(tmp)
        probes = build_fleet_workload(
            root,
            n_galleries=n_galleries,
            n_subjects=n_subjects,
            n_regions=n_regions,
            n_timepoints=n_timepoints,
            n_features=n_features,
            probes_per_request=probes_per_request,
            seed=seed,
        )

        # The bit-identity oracle: the same requests served by one plain
        # in-process service over the same persisted galleries (residency
        # only affects *when* a gallery reloads, never what it answers).
        serial_registry = GalleryRegistry(root=root, config=config)
        serial = IdentificationService(registry=serial_registry, config=config)
        try:
            reference = {
                name: _response_document(
                    serial.identify(IdentifyRequest(gallery=name, scans=scans))
                )
                for name, scans in probes.items()
            }
        finally:
            serial.close()

        bitwise_equal = True
        per_fleet = {}
        http_codecs = {}
        for workers in sorted({BASELINE_WORKERS, int(fleet_workers)}):
            router = GalleryRouter(root, config=config, workers=workers)
            try:
                _drive_fleet(router, probes, 1)  # warm-up: shards resident, caches hot
                samples = []
                for _ in range(repeats):
                    responses, elapsed = _drive_fleet(
                        router, probes, requests_per_gallery
                    )
                    samples.append(elapsed)
                    bitwise_equal = bitwise_equal and all(
                        _response_document(response) == reference[name]
                        for name, batch in responses.items()
                        for response in batch
                    )
                stats = router.stats()
                best = min(samples)
                total_requests = n_galleries * requests_per_gallery
                per_fleet[str(workers)] = {
                    "workers": workers,
                    "best_s": best,
                    "throughput_rps": total_requests / best if best > 0 else float("inf"),
                    "p50_ms": float(1e3 * np.percentile(samples, 50)),
                    "p99_ms": float(1e3 * np.percentile(samples, 99)),
                    "respawns": stats.router["respawns"],
                    "per_worker_requests": stats.router["per_worker"],
                }
                if check_http_codecs and workers == int(fleet_workers):
                    # Routed HTTP: the same front end single-process serving
                    # uses, dispatching into the fleet — both codecs must
                    # keep the documents bit-identical.
                    with BackgroundHttpServer(router, port=0) as server:
                        for codec in CODECS:
                            with ServiceClient(port=server.port, codec=codec) as client:
                                http_codecs[codec] = all(
                                    _response_document(
                                        client.identify(gallery=name, scans=scans)
                                    )
                                    == reference[name]
                                    for name, scans in probes.items()
                                )
            finally:
                router.close()

    baseline = per_fleet[str(BASELINE_WORKERS)]["throughput_rps"]
    fleet = per_fleet[str(int(fleet_workers))]["throughput_rps"]
    if check_http_codecs:
        bitwise_equal = bitwise_equal and all(http_codecs.values())
    return {
        "n_galleries": n_galleries,
        "n_subjects": n_subjects,
        "n_regions": n_regions,
        "n_timepoints": n_timepoints,
        "requests_per_gallery": requests_per_gallery,
        "probes_per_request": probes_per_request,
        "max_resident_galleries": int(max_resident_galleries),
        "fleet_workers": int(fleet_workers),
        "fleets": per_fleet,
        "speedup": fleet / baseline if baseline > 0 else float("inf"),
        "bitwise_equal": bool(bitwise_equal),
        "http_codecs": http_codecs,
    }


def trajectory_record(outcome: dict) -> dict:
    """The ``BENCH_router.json`` trajectory record of one benchmark outcome."""
    return {
        "benchmark": "router_scaling",
        "workload": {
            "n_galleries": outcome["n_galleries"],
            "n_subjects": outcome["n_subjects"],
            "n_regions": outcome["n_regions"],
            "n_timepoints": outcome["n_timepoints"],
            "requests_per_gallery": outcome["requests_per_gallery"],
            "probes_per_request": outcome["probes_per_request"],
            "max_resident_galleries": outcome["max_resident_galleries"],
        },
        "fleets": outcome["fleets"],
        "fleet_workers": outcome["fleet_workers"],
        "speedup": outcome["speedup"],
        "bitwise_equal": outcome["bitwise_equal"],
        "http_codecs": outcome["http_codecs"],
    }


def test_router_scaling_speedup_and_bit_identity(benchmark):
    """Acceptance workload: 16 galleries over a residency cap of 4, 4 workers vs 1.

    Hard guarantees: every routed response (IPC and both HTTP codecs)
    bit-identical to single-process serving, and the 4-worker fleet at
    least ``DEFAULT_MIN_SPEEDUP``x the 1-worker aggregate warm throughput
    (the fleet keeps every shard resident; the single worker thrashes its
    TTL/LRU cap — and on multi-core hosts the fleet also serves on 4 CPUs).
    Timing on a loaded CI box is noisy, so up to three measurement rounds
    are taken; correctness must hold on every round.
    """
    def measure():
        best = None
        for _ in range(3):
            outcome = run_router_benchmark()
            assert outcome["bitwise_equal"], (
                "routed responses diverged from single-process serving: "
                f"http_codecs={outcome['http_codecs']}"
            )
            if best is None or outcome["speedup"] > best["speedup"]:
                best = outcome
            if best["speedup"] >= DEFAULT_MIN_SPEEDUP:
                break
        return best

    outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    baseline = outcome["fleets"][str(BASELINE_WORKERS)]
    fleet = outcome["fleets"][str(outcome["fleet_workers"])]
    print(
        f"\n1 worker {baseline['throughput_rps']:.0f} req/s vs "
        f"{outcome['fleet_workers']} workers {fleet['throughput_rps']:.0f} req/s "
        f"({outcome['speedup']:.2f}x) over {outcome['n_galleries']} galleries"
    )
    assert outcome["speedup"] >= DEFAULT_MIN_SPEEDUP, (
        f"{outcome['fleet_workers']}-worker fleet only {outcome['speedup']:.2f}x "
        f"the 1-worker aggregate throughput (bound {DEFAULT_MIN_SPEEDUP}x)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--galleries", type=int, default=16)
    parser.add_argument("--subjects", type=int, default=96)
    parser.add_argument("--regions", type=int, default=32)
    parser.add_argument("--timepoints", type=int, default=100)
    parser.add_argument("--features", type=int, default=60)
    parser.add_argument("--requests", type=int, default=6,
                        help="warm identify requests per gallery per round")
    parser.add_argument("--probes", type=int, default=1,
                        help="probe scans per request")
    parser.add_argument("--max-resident", type=int, default=DEFAULT_MAX_RESIDENT,
                        help="per-worker TTL/LRU residency cap (galleries)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=FLEET_WORKERS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help="fail below this fleet-vs-1-worker throughput ratio (the "
        "acceptance bound holds at the default 16-gallery workload; tiny "
        "CI smoke workloads cannot amortize fleet spawn + IPC costs and "
        "pass with --min-speedup 0 — bit-identity is still enforced)",
    )
    args = parser.parse_args()
    outcome = run_router_benchmark(
        n_galleries=args.galleries,
        n_subjects=args.subjects,
        n_regions=args.regions,
        n_timepoints=args.timepoints,
        n_features=min(args.features, args.regions * (args.regions - 1) // 2),
        requests_per_gallery=args.requests,
        probes_per_request=args.probes,
        max_resident_galleries=args.max_resident,
        repeats=args.repeats,
        seed=args.seed,
        fleet_workers=args.workers,
    )
    total = outcome["n_galleries"] * outcome["requests_per_gallery"]
    print(
        "workload: {total} warm identifies per round ({n_galleries} galleries "
        "x {requests_per_gallery} requests, {probes_per_request} probe(s) each, "
        "{n_subjects} subjects x {n_regions} regions per gallery, "
        "residency cap {max_resident_galleries}/worker)".format(
            total=total, **outcome
        )
    )
    for key in sorted(outcome["fleets"], key=int):
        entry = outcome["fleets"][key]
        print(
            f"{entry['workers']} worker(s) (warm)      : {entry['best_s']:.4f} s/round "
            f"({entry['throughput_rps']:.0f} req/s, p50 {entry['p50_ms']:.1f} ms / "
            f"p99 {entry['p99_ms']:.1f} ms, respawns {entry['respawns']})"
        )
    print("aggregate speedup       : {speedup:.2f}x".format(**outcome))
    print(
        "bitwise equal to serial : {bitwise_equal} "
        "(routed http: {http_codecs})".format(**outcome)
    )
    ok = outcome["bitwise_equal"] and outcome["speedup"] >= args.min_speedup
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
