"""Statistical helpers shared by the connectome and attack modules.

These are small, numerically careful wrappers around NumPy primitives.  They
exist so that correlation handling (degenerate constant series, Fisher
transforms, z-scoring conventions) is implemented exactly once.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_matrix


def zscore(data: np.ndarray, axis: int = -1, ddof: int = 0, eps: float = 1e-12) -> np.ndarray:
    """Z-score ``data`` along ``axis``.

    Constant slices (zero standard deviation) are mapped to zeros rather than
    NaN so that downstream correlation code never sees invalid values; this
    matches the convention used when a region's averaged BOLD signal is flat.
    """
    data = np.asarray(data, dtype=np.float64)
    mean = data.mean(axis=axis, keepdims=True)
    std = data.std(axis=axis, ddof=ddof, keepdims=True)
    safe_std = np.where(std < eps, 1.0, std)
    out = (data - mean) / safe_std
    return np.where(std < eps, 0.0, out)


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation between two 1-D vectors.

    Returns 0.0 when either vector is constant, which is the behaviour the
    matching code relies on (a constant feature vector should never produce a
    confident match).
    """
    x = check_array(x, name="x", ndim=1)
    y = check_array(y, name="y", ndim=1)
    if x.shape[0] != y.shape[0]:
        raise ValidationError(
            f"x and y must have the same length, got {x.shape[0]} and {y.shape[0]}"
        )
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.linalg.norm(xc) * np.linalg.norm(yc)
    if denom < 1e-15:
        return 0.0
    return float(np.dot(xc, yc) / denom)


def pairwise_pearson(
    columns_a: np.ndarray, columns_b: Optional[np.ndarray] = None
) -> np.ndarray:
    """Pearson correlation between every pair of columns of two matrices.

    Parameters
    ----------
    columns_a:
        ``(n_features, n_a)`` matrix whose columns are observations.
    columns_b:
        ``(n_features, n_b)`` matrix; defaults to ``columns_a``.

    Returns
    -------
    numpy.ndarray
        ``(n_a, n_b)`` matrix of correlations.  Columns with zero variance
        correlate 0 with everything.
    """
    a = check_matrix(columns_a, name="columns_a")
    b = a if columns_b is None else check_matrix(columns_b, name="columns_b")
    if a.shape[0] != b.shape[0]:
        raise ValidationError(
            "column matrices must share the feature dimension, "
            f"got {a.shape[0]} and {b.shape[0]}"
        )
    ac = a - a.mean(axis=0, keepdims=True)
    bc = b - b.mean(axis=0, keepdims=True)
    a_norm = np.linalg.norm(ac, axis=0)
    b_norm = np.linalg.norm(bc, axis=0)
    a_safe = np.where(a_norm < 1e-15, 1.0, a_norm)
    b_safe = np.where(b_norm < 1e-15, 1.0, b_norm)
    corr = (ac / a_safe).T @ (bc / b_safe)
    corr[a_norm < 1e-15, :] = 0.0
    corr[:, b_norm < 1e-15] = 0.0
    return np.clip(corr, -1.0, 1.0)


def correlation_matrix(timeseries: np.ndarray) -> np.ndarray:
    """Region-by-region Pearson correlation of a ``(regions, time)`` matrix.

    Degenerate (constant) rows produce zero correlations off the diagonal and
    1.0 on the diagonal, keeping the output a valid correlation matrix.
    """
    ts = check_matrix(timeseries, name="timeseries", min_cols=2)
    corr = pairwise_pearson(ts.T)
    np.fill_diagonal(corr, 1.0)
    return corr


def fisher_z(r: np.ndarray, clip: float = 1.0 - 1e-7) -> np.ndarray:
    """Fisher r-to-z transform with clipping for numerical stability."""
    r = np.clip(np.asarray(r, dtype=np.float64), -clip, clip)
    return np.arctanh(r)


def inverse_fisher_z(z: np.ndarray) -> np.ndarray:
    """Inverse Fisher transform (z-to-r)."""
    return np.tanh(np.asarray(z, dtype=np.float64))


def normalized_rmse(
    y_true: np.ndarray, y_pred: np.ndarray, normalization: str = "range"
) -> float:
    """Root-mean-squared error normalized by the range or mean of ``y_true``.

    The paper reports "normalized root-mean-squared error (in %)" for the
    task-performance regression (Table 1); this helper implements that metric.
    """
    y_true = check_array(y_true, name="y_true", ndim=1)
    y_pred = check_array(y_pred, name="y_pred", ndim=1)
    if y_true.shape != y_pred.shape:
        raise ValidationError("y_true and y_pred must have the same shape")
    rmse = float(np.sqrt(np.mean((y_true - y_pred) ** 2)))
    if normalization == "range":
        scale = float(np.ptp(y_true))
    elif normalization == "mean":
        scale = float(np.abs(np.mean(y_true)))
    else:
        raise ValidationError("normalization must be 'range' or 'mean'")
    if scale < 1e-15:
        return 0.0 if rmse < 1e-15 else float("inf")
    return rmse / scale


def summarize(values: np.ndarray) -> Tuple[float, float]:
    """Return ``(mean, std)`` of a sequence as plain floats."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValidationError("cannot summarize an empty sequence")
    return float(values.mean()), float(values.std())
