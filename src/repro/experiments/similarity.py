"""Similarity-matrix experiments: Figures 1, 2, 7, and 8.

These experiments compute the subject-by-subject similarity between two
sessions of a cohort (in the leverage-selected feature space) and check the
visual claim of the corresponding figure: same-subject similarities (the
diagonal) dominate different-subject similarities (everything else).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.attack.deanonymize import LeverageScoreAttack
from repro.connectome.similarity import (
    identification_accuracy_from_similarity,
    pairwise_similarity,
    similarity_contrast,
)
from repro.datasets.adhd200 import ADHD200LikeDataset
from repro.datasets.hcp import HCPLikeDataset
from repro.experiments.config import ADHDExperimentConfig, HCPExperimentConfig
from repro.reporting.experiment import ExperimentRecord


def _similarity_record(
    experiment_id: str,
    title: str,
    similarity: np.ndarray,
    configuration: Dict,
    paper_claim: str,
    accuracy_threshold: Optional[float] = None,
    paper_accuracy: Optional[str] = None,
) -> ExperimentRecord:
    """Build the experiment record shared by the four similarity figures."""
    contrast = similarity_contrast(similarity)
    accuracy = identification_accuracy_from_similarity(similarity)
    record = ExperimentRecord(
        experiment_id=experiment_id,
        title=title,
        configuration=configuration,
        metrics={
            "identification_accuracy": accuracy,
            "diagonal_mean": contrast["diagonal_mean"],
            "off_diagonal_mean": contrast["off_diagonal_mean"],
            "contrast": contrast["contrast"],
        },
        arrays={"similarity": similarity},
    )
    record.add_comparison(
        description="diagonal (same subject) similarity exceeds off-diagonal",
        paper_value=paper_claim,
        measured_value=(
            f"diag {contrast['diagonal_mean']:.3f} vs off-diag "
            f"{contrast['off_diagonal_mean']:.3f}"
        ),
        matches_shape=contrast["contrast"] > 0,
    )
    if accuracy_threshold is not None and paper_accuracy is not None:
        record.add_comparison(
            description="identification accuracy from the similarity matrix",
            paper_value=paper_accuracy,
            measured_value=f"{100.0 * accuracy:.1f} %",
            matches_shape=accuracy >= accuracy_threshold,
        )
    return record


def figure1_rest_similarity(config: Optional[HCPExperimentConfig] = None) -> ExperimentRecord:
    """Figure 1: pairwise similarity of resting-state connectomes."""
    config = config or HCPExperimentConfig()
    dataset = HCPLikeDataset(
        n_subjects=config.n_subjects,
        n_regions=config.n_regions,
        n_timepoints=config.n_timepoints,
        random_state=config.seed,
    )
    pair = dataset.encoding_pair("REST")
    attack = LeverageScoreAttack(
        n_features=min(config.n_features, pair["reference"].n_features)
    ).fit(pair["reference"])
    similarity = pairwise_similarity(
        pair["reference"], pair["target"], feature_indices=attack.selected_features_
    )
    return _similarity_record(
        experiment_id="figure1",
        title="Pairwise similarity of resting-state connectomes",
        similarity=similarity,
        configuration=config.as_dict(),
        paper_claim="high diagonal, low off-diagonal (rest accuracy > 94 %)",
        accuracy_threshold=0.90,
        paper_accuracy="> 94 %",
    )


def figure2_task_similarity(
    config: Optional[HCPExperimentConfig] = None, task: str = "LANGUAGE"
) -> ExperimentRecord:
    """Figure 2: pairwise similarity of task (language) connectomes.

    The paper's claim is twofold: the diagonal still dominates, but the
    contrast is weaker than in resting state.  Both aspects are checked.
    """
    config = config or HCPExperimentConfig()
    dataset = HCPLikeDataset(
        n_subjects=config.n_subjects,
        n_regions=config.n_regions,
        n_timepoints=config.n_timepoints,
        random_state=config.seed,
    )
    rest_pair = dataset.encoding_pair("REST")
    task_pair = dataset.encoding_pair(task)

    rest_attack = LeverageScoreAttack(
        n_features=min(config.n_features, rest_pair["reference"].n_features)
    ).fit(rest_pair["reference"])
    task_attack = LeverageScoreAttack(
        n_features=min(config.n_features, task_pair["reference"].n_features)
    ).fit(task_pair["reference"])

    rest_similarity = pairwise_similarity(
        rest_pair["reference"], rest_pair["target"],
        feature_indices=rest_attack.selected_features_,
    )
    task_similarity = pairwise_similarity(
        task_pair["reference"], task_pair["target"],
        feature_indices=task_attack.selected_features_,
    )

    record = _similarity_record(
        experiment_id="figure2",
        title=f"Pairwise similarity of {task.lower()} task connectomes",
        similarity=task_similarity,
        configuration={**config.as_dict(), "task": task},
        paper_claim="diagonal dominant but contrast weaker than resting state",
    )
    rest_contrast = similarity_contrast(rest_similarity)["contrast"]
    task_contrast = similarity_contrast(task_similarity)["contrast"]
    record.metrics["rest_contrast"] = rest_contrast
    record.metrics["task_contrast"] = task_contrast
    record.add_comparison(
        description="task contrast is weaker than resting-state contrast",
        paper_value="task diagonal/off-diagonal contrast weaker than rest",
        measured_value=f"task {task_contrast:.3f} vs rest {rest_contrast:.3f}",
        matches_shape=task_contrast < rest_contrast,
    )
    return record


def figure7_adhd_subtype1(config: Optional[ADHDExperimentConfig] = None) -> ExperimentRecord:
    """Figure 7: inter-session similarity of ADHD subtype-1 subjects."""
    return _adhd_subtype_similarity(config, subtype="adhd_subtype_1", experiment_id="figure7")


def figure8_adhd_subtype3(config: Optional[ADHDExperimentConfig] = None) -> ExperimentRecord:
    """Figure 8: inter-session similarity of ADHD subtype-3 subjects."""
    return _adhd_subtype_similarity(config, subtype="adhd_subtype_3", experiment_id="figure8")


def _adhd_subtype_similarity(
    config: Optional[ADHDExperimentConfig], subtype: str, experiment_id: str
) -> ExperimentRecord:
    config = config or ADHDExperimentConfig()
    dataset = ADHD200LikeDataset(
        n_cases=config.n_cases,
        n_controls=config.n_controls,
        n_regions=config.n_regions,
        n_timepoints=config.n_timepoints,
        random_state=config.seed,
    )
    pair = dataset.subtype_session_pair(subtype)
    attack = LeverageScoreAttack(
        n_features=min(config.n_features, pair["reference"].n_features)
    ).fit(pair["reference"])
    similarity = pairwise_similarity(
        pair["reference"], pair["target"], feature_indices=attack.selected_features_
    )
    return _similarity_record(
        experiment_id=experiment_id,
        title=f"Inter-session similarity of {subtype} subjects (ADHD-200-like)",
        similarity=similarity,
        configuration={**config.as_dict(), "subtype": subtype},
        paper_claim="strong diagonal: scans of the same ADHD subject are most similar",
    )
