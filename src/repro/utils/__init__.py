"""Shared utility substrate: validation, RNG handling, statistics, and I/O."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_matrix,
    check_positive_int,
    check_probability,
    check_same_length,
    check_square,
    check_symmetric,
)
from repro.utils.stats import (
    fisher_z,
    inverse_fisher_z,
    pearson_correlation,
    pairwise_pearson,
    zscore,
)
from repro.utils.io import load_result, save_result

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_array",
    "check_matrix",
    "check_positive_int",
    "check_probability",
    "check_same_length",
    "check_square",
    "check_symmetric",
    "fisher_z",
    "inverse_fisher_z",
    "pearson_correlation",
    "pairwise_pearson",
    "zscore",
    "load_result",
    "save_result",
]
