"""Re-identification of clinical (ADHD-200-like) subjects across sites.

The most worrying scenario in the paper: hospital records contain resting
state scans of children with ADHD, acquired at different imaging sites with
different scanners.  This example shows that

* subjects with ADHD are as re-identifiable as healthy adults (Figures 7-9),
* the signature survives a simulated change of scanner between the two
  sessions (Table 2), and
* performance degrades gracefully as the inter-scanner noise grows.

Run with::

    python examples/clinical_reidentification.py
"""

from repro import (
    ADHD200LikeDataset,
    EnrollRequest,
    IdentificationService,
    IdentifyRequest,
)
from repro.attack.evaluation import repeated_identification
from repro.connectome.similarity import pairwise_similarity, similarity_contrast
from repro.datasets.multisite import simulate_multisite_session
from repro.reporting.figures import ascii_heatmap
from repro.reporting.tables import format_table


def main() -> None:
    dataset = ADHD200LikeDataset(
        n_cases=24, n_controls=24, n_regions=116, n_timepoints=140, random_state=3
    )
    print(
        f"Cohort: {dataset.n_cases} ADHD cases + {dataset.n_controls} controls, "
        f"{dataset.n_regions} AAL2-like regions, {len(dataset.sites)} sites"
    )

    # --- Figures 7/8: subtype similarity matrices -------------------------
    subtype_pair = dataset.subtype_session_pair("adhd_subtype_1")
    similarity = pairwise_similarity(subtype_pair["reference"], subtype_pair["target"])
    contrast = similarity_contrast(similarity)
    print()
    print("ADHD subtype 1, session 1 vs session 2 similarity:")
    print(ascii_heatmap(similarity, max_size=24))
    print(
        f"diagonal mean {contrast['diagonal_mean']:.3f} vs "
        f"off-diagonal mean {contrast['off_diagonal_mean']:.3f}"
    )

    # --- Figure 9: train/test identification of the full cohort ----------
    pair = dataset.session_pair()
    summary = repeated_identification(
        pair["reference"], pair["target"], n_features=100, n_repetitions=5, random_state=0
    )
    print()
    print(
        "Held-out identification accuracy (train-set leverage features): "
        f"{100 * summary['accuracy_mean']:.1f} +- {100 * summary['accuracy_std']:.1f} %"
    )

    # --- Table 2: second session re-acquired on a different scanner ------
    # The hospital runs an identification service: the reference gallery is
    # enrolled ONCE; every noisy re-acquisition below arrives as a typed
    # IdentifyRequest and is served warm — no per-noise re-fit of the
    # leverage scores.
    reference_scans = dataset.generate_session(1)
    target_scans = dataset.generate_session(2)
    service = IdentificationService()
    service.enroll(
        EnrollRequest(gallery="hospital", scans=reference_scans, create=True)
    )
    rows = []
    for noise in (0.0, 0.10, 0.20, 0.30):
        noisy_scans = simulate_multisite_session(
            target_scans, noise_variance_fraction=noise, random_state=1
        )
        response = service.identify(
            IdentifyRequest(gallery="hospital", scans=noisy_scans)
        )
        rows.append([f"{int(100 * noise)} %", 100 * response.accuracy])
    gallery = service.registry.get("hospital")
    print()
    print(
        f"gallery fitted {gallery.refit_count_} time(s) for "
        f"{len(rows)} identification queries "
        f"({service.stats().requests} service requests)"
    )
    print()
    print(
        format_table(
            ["Scanner noise variance", "Identification accuracy (%)"],
            rows,
            title="Multi-site acquisition simulation (paper Table 2, ADHD column)",
        )
    )


if __name__ == "__main__":
    main()
