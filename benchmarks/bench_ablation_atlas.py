"""Ablation: atlas granularity.

The paper uses two very different parcellations (360-region Glasser for HCP,
116-region AAL2 for ADHD-200) and argues the signature is robust to the
choice.  This ablation sweeps the region count of the synthetic cohort.
"""

from conftest import run_once

from repro.attack import LeverageScoreAttack
from repro.datasets import HCPLikeDataset
from repro.reporting.tables import format_table

REGION_COUNTS = (40, 80, 120, 180)


def _run_sweep(hcp_config):
    rows = []
    for n_regions in REGION_COUNTS:
        dataset = HCPLikeDataset(
            n_subjects=hcp_config.n_subjects,
            n_regions=n_regions,
            n_timepoints=hcp_config.n_timepoints,
            random_state=hcp_config.seed,
        )
        pair = dataset.encoding_pair("REST")
        attack = LeverageScoreAttack(
            n_features=min(hcp_config.n_features, pair["reference"].n_features)
        )
        accuracy = attack.fit_identify(pair["reference"], pair["target"]).accuracy()
        rows.append([n_regions, pair["reference"].n_features, 100 * accuracy])
    return rows


def test_ablation_atlas_granularity(benchmark, hcp_config):
    rows = run_once(benchmark, _run_sweep, hcp_config)
    print()
    print(
        format_table(
            ["Regions", "Connectome features", "Accuracy (%)"],
            rows,
            title="Ablation: atlas granularity (REST identification)",
        )
    )
    # Identification works across all parcellation granularities.
    assert all(row[2] >= 80.0 for row in rows)
