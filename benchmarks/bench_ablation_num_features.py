"""Ablation: number of retained leverage features.

The paper reduces 64 620 features to "< 100"; this ablation sweeps the
feature budget and shows the accuracy saturating well below the full
connectome size.
"""

from conftest import run_once

from repro.attack import LeverageScoreAttack
from repro.datasets import HCPLikeDataset
from repro.reporting.tables import format_table

FEATURE_BUDGETS = (10, 25, 50, 100, 200, 400)


def _run_sweep(hcp_config):
    dataset = HCPLikeDataset(
        n_subjects=hcp_config.n_subjects,
        n_regions=hcp_config.n_regions,
        n_timepoints=hcp_config.n_timepoints,
        random_state=hcp_config.seed,
    )
    pair = dataset.encoding_pair("REST")
    rows = []
    for budget in FEATURE_BUDGETS:
        attack = LeverageScoreAttack(n_features=budget)
        accuracy = attack.fit_identify(pair["reference"], pair["target"]).accuracy()
        rows.append([budget, 100 * accuracy])
    return rows


def test_ablation_feature_budget(benchmark, hcp_config):
    rows = run_once(benchmark, _run_sweep, hcp_config)
    print()
    print(
        format_table(
            ["Features retained", "Accuracy (%)"],
            rows,
            title="Ablation: leverage-feature budget (REST identification)",
        )
    )
    # Accuracy at the paper's budget (~100 features) should be close to the
    # best accuracy in the sweep.
    best = max(row[1] for row in rows)
    at_hundred = dict(rows)[100]
    assert at_hundred >= best - 10.0
