"""Tests for the generative subject model."""

import numpy as np
import pytest

from repro.datasets.subject import SubjectPopulation
from repro.datasets.tasks import HCP_TASKS
from repro.exceptions import DatasetError
from repro.utils.stats import correlation_matrix


@pytest.fixture(scope="module")
def population():
    return SubjectPopulation(
        n_subjects=6,
        n_regions=30,
        performance_tasks=["LANGUAGE"],
        random_state=1,
    )


class TestPopulationConstruction:
    def test_subject_count_and_ids(self, population):
        assert len(population.subjects) == 6
        assert len(set(population.subject_ids())) == 6

    def test_loading_shapes(self, population):
        for subject in population.subjects:
            assert subject.loading.shape == (30, population.n_subject_factors)

    def test_fingerprint_mask_size(self, population):
        expected = int(round(population.fingerprint_region_fraction * 30))
        assert population.fingerprint_region_mask.sum() == expected

    def test_abilities_drawn_for_performance_tasks(self, population):
        for subject in population.subjects:
            assert "LANGUAGE" in subject.abilities
            assert 0.0 <= subject.abilities["LANGUAGE"] <= 1.0

    def test_performance_percent_monotone_in_ability(self, population):
        subjects = sorted(population.subjects, key=lambda s: s.abilities["LANGUAGE"])
        metrics = [s.performance_percent("LANGUAGE") for s in subjects]
        assert metrics == sorted(metrics)

    def test_deterministic_cohort(self):
        a = SubjectPopulation(n_subjects=3, n_regions=20, random_state=9)
        b = SubjectPopulation(n_subjects=3, n_regions=20, random_state=9)
        np.testing.assert_allclose(a.subject(0).loading, b.subject(0).loading)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            SubjectPopulation(n_subjects=2, n_regions=20, fingerprint_distinctiveness=2.0)
        with pytest.raises(DatasetError):
            SubjectPopulation(n_subjects=2, n_regions=20, session_jitter=-0.1)
        with pytest.raises(DatasetError):
            SubjectPopulation(n_subjects=2, n_regions=20, fingerprint_region_fraction=0.0)

    def test_subject_index_out_of_range(self, population):
        with pytest.raises(DatasetError):
            population.subject(99)


class TestScanGeneration:
    def test_shape(self, population):
        ts = population.generate_timeseries(
            0, HCP_TASKS["REST"], session="S1", n_timepoints=80
        )
        assert ts.shape == (30, 80)

    def test_deterministic_per_scan(self, population):
        a = population.generate_timeseries(1, HCP_TASKS["REST"], session="S1", n_timepoints=60)
        b = population.generate_timeseries(1, HCP_TASKS["REST"], session="S1", n_timepoints=60)
        np.testing.assert_allclose(a, b)

    def test_sessions_differ(self, population):
        a = population.generate_timeseries(1, HCP_TASKS["REST"], session="S1", n_timepoints=60)
        b = population.generate_timeseries(1, HCP_TASKS["REST"], session="S2", n_timepoints=60)
        assert not np.allclose(a, b)

    def test_same_subject_more_similar_across_sessions_than_different_subjects(
        self, population
    ):
        def connectome_vector(subject, session):
            ts = population.generate_timeseries(
                subject, HCP_TASKS["REST"], session=session, n_timepoints=150
            )
            corr = correlation_matrix(ts)
            rows, cols = np.triu_indices(corr.shape[0], k=1)
            return corr[rows, cols]

        same = np.corrcoef(connectome_vector(0, "S1"), connectome_vector(0, "S2"))[0, 1]
        different = np.corrcoef(connectome_vector(0, "S1"), connectome_vector(1, "S2"))[0, 1]
        assert same > different

    def test_task_loadings_cached_and_localized(self, population):
        loading = population.task_loading(HCP_TASKS["MOTOR"])
        again = population.task_loading(HCP_TASKS["MOTOR"])
        assert loading is again
        inactive_rows = np.all(loading == 0.0, axis=1)
        assert inactive_rows.sum() > 0

    def test_performance_loading_shares_active_regions(self, population):
        task = HCP_TASKS["LANGUAGE"]
        task_loading = population.task_loading(task)
        perf_loading = population.performance_loading(task)
        task_active = ~np.all(task_loading == 0.0, axis=1)
        perf_active = ~np.all(perf_loading == 0.0, axis=1)
        np.testing.assert_array_equal(task_active, perf_active)

    def test_ability_changes_task_scan(self, population):
        # Two subjects with different abilities produce different task
        # connectome structure even with identical factor seeds being distinct
        # anyway; at minimum the generation must not error for ability
        # extremes.
        ts = population.generate_timeseries(
            2, HCP_TASKS["LANGUAGE"], session="S1", n_timepoints=60
        )
        assert np.isfinite(ts).all()

    def test_too_few_timepoints_rejected(self, population):
        with pytest.raises(Exception):
            population.generate_timeseries(0, HCP_TASKS["REST"], session="S1", n_timepoints=2)
