"""Benchmark: Figure 6 — t-SNE task clustering and task prediction."""

from conftest import report, run_once

from repro.experiments import figure6_task_prediction


def test_figure6_task_prediction(benchmark, hcp_config, output_dir):
    record = run_once(benchmark, figure6_task_prediction, hcp_config)
    report(record, output_dir)
    print(
        "overall accuracy {:.1f} %, rest accuracy {:.1f} %, separation ratio {:.2f}".format(
            100 * record.metrics["overall_accuracy"],
            100 * record.metrics["rest_accuracy"],
            record.metrics["cluster_separation_ratio"],
        )
    )
    assert record.shape_holds()
