"""Benchmark: Figure 7 — inter-session similarity of ADHD subtype-1 subjects."""

from conftest import report, run_once

from repro.experiments import figure7_adhd_subtype1


def test_figure7_adhd_subtype1(benchmark, adhd_config, output_dir):
    record = run_once(benchmark, figure7_adhd_subtype1, adhd_config)
    report(record, output_dir)
    assert record.shape_holds()
