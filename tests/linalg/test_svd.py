"""Tests for repro.linalg.svd."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.svd import (
    economy_svd,
    effective_rank,
    randomized_svd,
    stable_rank,
    truncate_svd,
)


class TestEconomySvd:
    def test_reconstruction(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        np.testing.assert_allclose((u * s) @ vt, tall_matrix, atol=1e-8)

    def test_orthonormal_columns(self, tall_matrix):
        u, _, _ = economy_svd(tall_matrix)
        np.testing.assert_allclose(u.T @ u, np.eye(u.shape[1]), atol=1e-10)

    def test_singular_values_sorted(self, tall_matrix):
        _, s, _ = economy_svd(tall_matrix)
        assert np.all(np.diff(s) <= 1e-12)


class TestRandomizedSvd:
    def test_captures_low_rank_structure(self, tall_matrix):
        u, s, vt = randomized_svd(tall_matrix, rank=5, random_state=0)
        approx = (u * s) @ vt
        relative_error = np.linalg.norm(tall_matrix - approx) / np.linalg.norm(tall_matrix)
        assert relative_error < 0.05

    def test_matches_exact_singular_values(self, tall_matrix):
        _, s_exact, _ = economy_svd(tall_matrix)
        _, s_rand, _ = randomized_svd(tall_matrix, rank=5, random_state=0)
        np.testing.assert_allclose(s_rand, s_exact[:5], rtol=0.05)

    def test_rank_too_large_raises(self, tall_matrix):
        with pytest.raises(ValidationError):
            randomized_svd(tall_matrix, rank=100)

    def test_deterministic_with_seed(self, tall_matrix):
        u1, _, _ = randomized_svd(tall_matrix, rank=3, random_state=7)
        u2, _, _ = randomized_svd(tall_matrix, rank=3, random_state=7)
        np.testing.assert_allclose(np.abs(u1), np.abs(u2))


class TestRankDiagnostics:
    def test_stable_rank_of_identity(self):
        assert stable_rank(np.eye(10)) == pytest.approx(10.0)

    def test_stable_rank_of_rank_one(self, rng):
        u = rng.standard_normal((30, 1))
        v = rng.standard_normal((1, 8))
        assert stable_rank(u @ v) == pytest.approx(1.0, abs=1e-8)

    def test_stable_rank_of_zero_matrix(self):
        assert stable_rank(np.zeros((5, 5))) == 0.0

    def test_effective_rank_identity(self):
        s = np.ones(10)
        assert effective_rank(s, energy=0.95) == 10

    def test_effective_rank_spike(self):
        s = np.array([10.0, 0.1, 0.1])
        assert effective_rank(s, energy=0.95) == 1

    def test_effective_rank_rejects_bad_energy(self):
        with pytest.raises(ValidationError):
            effective_rank(np.ones(3), energy=1.5)

    def test_truncate_svd(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        u2, s2, vt2 = truncate_svd(u, s, vt, rank=3)
        assert u2.shape[1] == 3 and s2.shape[0] == 3 and vt2.shape[0] == 3

    def test_truncate_svd_rank_too_large(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        with pytest.raises(ValidationError):
            truncate_svd(u, s, vt, rank=s.shape[0] + 1)
