"""Tests for ridge and kernel ridge regression."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.ridge import KernelRidge, RidgeRegression


class TestRidgeRegression:
    def test_recovers_linear_relationship(self, rng):
        x = rng.standard_normal((100, 3))
        true_coefficients = np.array([2.0, -1.0, 0.5])
        y = x @ true_coefficients + 3.0
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        np.testing.assert_allclose(model.coef_, true_coefficients, atol=1e-4)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-4)

    def test_regularization_shrinks_coefficients(self, rng):
        x = rng.standard_normal((50, 5))
        y = x @ np.ones(5)
        small_alpha = RidgeRegression(alpha=1e-6).fit(x, y)
        large_alpha = RidgeRegression(alpha=100.0).fit(x, y)
        assert np.linalg.norm(large_alpha.coef_) < np.linalg.norm(small_alpha.coef_)

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            RidgeRegression().predict(rng.standard_normal((3, 2)))

    def test_feature_mismatch_raises(self, rng):
        model = RidgeRegression().fit(rng.standard_normal((20, 4)), rng.standard_normal(20))
        with pytest.raises(ValidationError):
            model.predict(rng.standard_normal((5, 3)))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValidationError):
            RidgeRegression(alpha=-1.0)

    def test_no_intercept_mode(self, rng):
        x = rng.standard_normal((80, 2))
        y = x @ np.array([1.0, 2.0])
        model = RidgeRegression(alpha=1e-8, fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [1.0, 2.0], atol=1e-5)


class TestKernelRidge:
    def test_linear_kernel_fits_linear_data(self, rng):
        from repro.ml.metrics import r2_score

        x = rng.standard_normal((60, 3))
        y = x @ np.array([1.0, -2.0, 0.5])
        krr = KernelRidge(alpha=1e-4, kernel="linear").fit(x, y)
        assert r2_score(y, krr.predict(x)) > 0.95

    def test_rbf_fits_nonlinear_function(self, rng):
        x = np.linspace(-3, 3, 120)[:, None]
        y = np.sin(x[:, 0])
        krr = KernelRidge(alpha=1e-3, kernel="rbf", gamma=1.0).fit(x, y)
        predictions = krr.predict(x)
        assert np.mean((predictions - y) ** 2) < 1e-3

    def test_interpolates_between_training_points(self, rng):
        x_train = np.linspace(0, 2 * np.pi, 50)[:, None]
        y_train = np.cos(x_train[:, 0])
        x_test = x_train[:-1] + np.diff(x_train[:, 0]).mean() / 2.0
        krr = KernelRidge(alpha=1e-4, kernel="rbf", gamma=2.0).fit(x_train, y_train)
        predictions = krr.predict(x_test)
        np.testing.assert_allclose(predictions, np.cos(x_test[:, 0]), atol=0.05)

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            KernelRidge().predict(rng.standard_normal((3, 2)))

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValidationError):
            KernelRidge(kernel="polynomial")

    def test_feature_mismatch_raises(self, rng):
        model = KernelRidge().fit(rng.standard_normal((20, 4)), rng.standard_normal(20))
        with pytest.raises(ValidationError):
            model.predict(rng.standard_normal((5, 3)))
