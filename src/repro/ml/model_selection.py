"""Train/test splitting utilities.

The paper's Table 1 experiment uses repeated random 80/20 subject splits
(1000 repetitions); :func:`repeated_train_test_splits` reproduces that
protocol while :class:`KFold` supports cross-validated ablations.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomStateLike, as_rng
from repro.utils.validation import check_positive_int


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.2,
    random_state: RandomStateLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``range(n_samples)`` into train and test index arrays.

    Parameters
    ----------
    n_samples:
        Total number of samples (e.g. subjects).
    test_fraction:
        Fraction assigned to the test set; at least one sample always lands
        in each split.
    random_state:
        Seed or generator controlling the permutation.
    """
    n_samples = check_positive_int(n_samples, name="n_samples", minimum=2)
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n_test = int(round(n_samples * test_fraction))
    n_test = min(max(n_test, 1), n_samples - 1)
    permutation = as_rng(random_state).permutation(n_samples)
    test_indices = np.sort(permutation[:n_test])
    train_indices = np.sort(permutation[n_test:])
    return train_indices, test_indices


def repeated_train_test_splits(
    n_samples: int,
    n_repetitions: int,
    test_fraction: float = 0.2,
    random_state: RandomStateLike = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Generate ``n_repetitions`` independent train/test splits."""
    n_repetitions = check_positive_int(n_repetitions, name="n_repetitions")
    rng = as_rng(random_state)
    return [
        train_test_split(n_samples, test_fraction=test_fraction, random_state=rng)
        for _ in range(n_repetitions)
    ]


class KFold:
    """K-fold cross-validation splitter over ``range(n_samples)``.

    Parameters
    ----------
    n_splits:
        Number of folds (each used once as the test set).
    shuffle:
        Whether to permute sample order before folding.
    random_state:
        Seed used when ``shuffle`` is true.
    """

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: RandomStateLike = None,
    ):
        self.n_splits = check_positive_int(n_splits, name="n_splits", minimum=2)
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n_samples = check_positive_int(n_samples, name="n_samples", minimum=2)
        if self.n_splits > n_samples:
            raise ValidationError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = as_rng(self.random_state).permutation(n_samples)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for fold_size in fold_sizes:
            stop = start + fold_size
            test_indices = np.sort(indices[start:stop])
            train_indices = np.sort(np.concatenate([indices[:start], indices[stop:]]))
            yield train_indices, test_indices
            start = stop
