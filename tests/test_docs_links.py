"""The docs tree exists, is linked from the README, and has no broken links.

Mirrors the CI lint-job step (``scripts/check_docs_links.py``) so a broken
relative link fails locally in the tier-1 suite, not only in CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_tree_exists():
    for name in ("protocol.md", "architecture.md", "serving.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} is missing"


def test_readme_links_into_docs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for name in ("docs/protocol.md", "docs/architecture.md", "docs/serving.md"):
        assert name in readme, f"README.md does not link {name}"


def test_all_relative_links_resolve():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs_links.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, f"link check failed:\n{result.stdout}{result.stderr}"
