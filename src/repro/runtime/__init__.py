"""Batched experiment runtime.

The runtime layer makes heavy multi-experiment workloads cheap to run:

``backend``
    Pluggable matching backends (``numpy64`` bit-exact default, ``numpy32``
    mixed precision, ``blas_blocked`` GEMM) behind one registry and the
    backend/precision policy.
``batch``
    Single-GEMM construction of group matrices from stacked time series,
    replacing the per-scan connectome loop.
``cache``
    Content-keyed artifact cache (connectomes, group matrices, leverage
    scores) with hit/miss statistics and an optional on-disk tier.
``runner``
    :class:`ExperimentRunner` executes batches of :class:`ExperimentSpec`
    through a thread/process pool with deterministic per-spec seeding.
``shm``
    Content-keyed shared-memory segments — the zero-copy transport that
    ships ``match_shard`` inputs to process-pool workers without pickling.
``results``
    Uniform :class:`RunResult` records with timing breakdowns and JSON
    serialization.
``info``
    Environment introspection behind the ``repro-attack runtime-info``
    command (cache stats, worker config, BLAS threading).
``faults``
    Deterministic, seeded fault injection (:class:`FaultPlan`): named
    injection sites across the serving stack — worker crash/hang/slow
    replies, IPC frame truncation/corruption, disk-cache I/O errors,
    dropped HTTP connections — for chaos and soak testing.
"""

from repro.runtime.backend import (
    MatchingBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.runtime.batch import (
    batch_correlation_connectomes,
    batch_group_features,
    batch_vectorize_connectomes,
    build_group_matrix_batched,
    stack_timeseries,
)
from repro.runtime.cache import (
    ArtifactCache,
    CacheStats,
    default_cache_dir,
    get_default_cache,
    set_default_cache,
)
from repro.runtime.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    install_plan,
    maybe_fire,
)
from repro.runtime.info import detect_blas_threading, format_runtime_info, runtime_info
from repro.runtime.results import (
    RunResult,
    TimingRecorder,
    load_results_json,
    summarize_results,
    write_results_json,
)
from repro.runtime.runner import (
    PAPER_EXPERIMENTS,
    ExperimentRunner,
    ExperimentSpec,
    execute_spec,
    paper_experiment_specs,
    register_task_kind,
)
from repro.runtime.shm import SharedArrayStore, shared_memory_available

__all__ = [
    # backend
    "MatchingBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    # batch
    "batch_correlation_connectomes",
    "batch_group_features",
    "batch_vectorize_connectomes",
    "build_group_matrix_batched",
    "stack_timeseries",
    # cache
    "ArtifactCache",
    "CacheStats",
    "default_cache_dir",
    "get_default_cache",
    "set_default_cache",
    # faults
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "install_plan",
    "maybe_fire",
    # runner
    "PAPER_EXPERIMENTS",
    "ExperimentRunner",
    "ExperimentSpec",
    "execute_spec",
    "paper_experiment_specs",
    "register_task_kind",
    # results
    "RunResult",
    "TimingRecorder",
    "load_results_json",
    "summarize_results",
    "write_results_json",
    # shm
    "SharedArrayStore",
    "shared_memory_available",
    # info
    "detect_blas_threading",
    "format_runtime_info",
    "runtime_info",
]
