"""Benchmark: Figure 8 — inter-session similarity of ADHD subtype-3 subjects."""

from conftest import report, run_once

from repro.experiments import figure8_adhd_subtype3


def test_figure8_adhd_subtype3(benchmark, adhd_config, output_dir):
    record = run_once(benchmark, figure8_adhd_subtype3, adhd_config)
    report(record, output_dir)
    assert record.shape_holds()
