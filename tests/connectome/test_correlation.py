"""Tests for connectome construction and (de)vectorization."""

import numpy as np
import pytest

from repro.connectome.correlation import (
    correlation_connectome,
    devectorize_connectome,
    n_regions_from_vector_length,
    partial_correlation_connectome,
    vector_index_to_region_pair,
    vectorize_connectome,
)
from repro.exceptions import ValidationError


class TestCorrelationConnectome:
    def test_symmetric_unit_diagonal(self, rng):
        ts = rng.standard_normal((10, 100))
        connectome = correlation_connectome(ts)
        np.testing.assert_allclose(connectome, connectome.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(connectome), 1.0)

    def test_detects_planted_correlation(self, rng):
        shared = rng.standard_normal(500)
        ts = rng.standard_normal((5, 500))
        ts[0] = shared + 0.1 * rng.standard_normal(500)
        ts[1] = shared + 0.1 * rng.standard_normal(500)
        connectome = correlation_connectome(ts)
        assert connectome[0, 1] > 0.9

    def test_fisher_transform_expands_strong_correlations(self, rng):
        shared = rng.standard_normal(300)
        ts = np.vstack([shared, shared + 0.05 * rng.standard_normal(300), rng.standard_normal(300)])
        plain = correlation_connectome(ts, fisher=False)
        fisher = correlation_connectome(ts, fisher=True)
        assert fisher[0, 1] > plain[0, 1]
        np.testing.assert_allclose(np.diag(fisher), 1.0)

    def test_partial_correlation_removes_indirect_link(self, rng):
        # x -> y and x -> z induce a marginal y-z correlation that partial
        # correlation should suppress.
        x = rng.standard_normal(4000)
        y = x + 0.5 * rng.standard_normal(4000)
        z = x + 0.5 * rng.standard_normal(4000)
        ts = np.vstack([x, y, z])
        marginal = correlation_connectome(ts)
        partial = partial_correlation_connectome(ts, shrinkage=0.01)
        assert abs(partial[1, 2]) < abs(marginal[1, 2])

    def test_partial_correlation_validates_shrinkage(self, rng):
        with pytest.raises(ValidationError):
            partial_correlation_connectome(rng.standard_normal((4, 50)), shrinkage=1.5)


class TestVectorization:
    def test_vector_length(self, rng):
        ts = rng.standard_normal((8, 60))
        connectome = correlation_connectome(ts)
        vector = vectorize_connectome(connectome)
        assert vector.shape == (8 * 7 // 2,)

    def test_roundtrip(self, rng):
        ts = rng.standard_normal((6, 60))
        connectome = correlation_connectome(ts)
        rebuilt = devectorize_connectome(vectorize_connectome(connectome))
        np.testing.assert_allclose(rebuilt, connectome, atol=1e-12)

    def test_paper_feature_count_for_360_regions(self):
        assert 360 * 359 // 2 == 64620
        assert n_regions_from_vector_length(64620) == 360

    def test_aal2_feature_count(self):
        assert n_regions_from_vector_length(6670) == 116

    def test_invalid_vector_length_raises(self):
        with pytest.raises(ValidationError):
            n_regions_from_vector_length(7)

    def test_devectorize_with_explicit_regions(self, rng):
        vector = rng.standard_normal(10)
        matrix = devectorize_connectome(vector, n_regions=5)
        assert matrix.shape == (5, 5)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_devectorize_length_mismatch(self, rng):
        with pytest.raises(ValidationError):
            devectorize_connectome(rng.standard_normal(10), n_regions=6)

    def test_vectorize_rejects_asymmetric(self, rng):
        with pytest.raises(ValidationError):
            vectorize_connectome(rng.standard_normal((4, 4)))


class TestIndexMapping:
    def test_first_index_is_first_pair(self):
        assert vector_index_to_region_pair(0, 5) == (0, 1)

    def test_last_index_is_last_pair(self):
        n = 5
        last = n * (n - 1) // 2 - 1
        assert vector_index_to_region_pair(last, n) == (3, 4)

    def test_consistency_with_vectorization(self, rng):
        n = 7
        connectome = correlation_connectome(rng.standard_normal((n, 80)))
        vector = vectorize_connectome(connectome)
        for index in (0, 5, 12, len(vector) - 1):
            row, col = vector_index_to_region_pair(index, n)
            assert vector[index] == pytest.approx(connectome[row, col])

    def test_out_of_range_raises(self):
        with pytest.raises(ValidationError):
            vector_index_to_region_pair(100, 5)
