"""Benchmark: Figure 1 — pairwise similarity of resting-state connectomes."""

from conftest import report, run_experiment_spec

from repro.reporting.figures import ascii_heatmap


def test_figure1_rest_similarity(benchmark, hcp_config, output_dir):
    record, result = run_experiment_spec(benchmark, "figure1", hcp_config=hcp_config)
    report(record, output_dir)
    print(ascii_heatmap(record.arrays["similarity"], max_size=30, title="REST similarity"))
    print(f"runtime breakdown: {result.timings}")
    assert record.shape_holds()
