"""Typed request/response messages of the serving API.

Every interaction with :class:`~repro.service.service.IdentificationService`
goes through one of these dataclasses instead of positional kwargs, so the
service internals (micro-batching, sharding, caching) can evolve without
breaking callers.  Like :class:`~repro.runtime.results.RunResult`, each
message JSON-round-trips through ``to_dict``/``from_dict``; heavyweight
payloads (scan records, group matrices, match results) ride along in-process
only and are dropped from the serialized form.

**Relation to the wire (contract).** These messages are codec-agnostic: the
``to_dict`` envelope (``request_id``, ``gallery``, ``metadata``, counts) is
what both HTTP codecs serialize, and scan payloads travel as either nested
JSON lists (:func:`repro.service.codec.scan_to_wire`, the bit-identity
oracle) or raw float64 frames (:func:`repro.service.codec.encode_frames`).
Decoding either wire form reconstructs :class:`IdentifyRequest` /
:class:`EnrollRequest` objects whose scan arrays are bit-identical to the
sender's, which is what makes HTTP identify responses bit-identical to
in-process calls — the normative spec is ``docs/protocol.md``.  Responses
always serialize as the plain JSON ``to_dict`` form regardless of the
request codec.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.connectome.group import GroupMatrix
from repro.datasets.base import ScanRecord
from repro.exceptions import ValidationError

#: Process-wide request-id sequence (deterministic, log-friendly).
_REQUEST_COUNTER = itertools.count(1)
_REQUEST_COUNTER_LOCK = threading.Lock()


def _next_request_id(prefix: str) -> str:
    with _REQUEST_COUNTER_LOCK:
        return f"{prefix}-{next(_REQUEST_COUNTER):06d}"


def _check_gallery_name(name: Any) -> str:
    if not isinstance(name, str) or not name:
        raise ValidationError("gallery must be a non-empty string")
    return name


@dataclass
class IdentifyRequest:
    """One identification query against a named gallery.

    Parameters
    ----------
    gallery:
        Name of the target gallery in the service's registry.
    scans:
        Anonymous probe scans (the usual payload).  In-process only — not
        part of the JSON form.  The serving cache content-keys probe
        payloads by freezing their arrays (``writeable=False``), so scan
        time series handed to the service can no longer be mutated in
        place afterwards; pass copies if you need to keep editing them.
    probe:
        Alternative payload: a pre-built probe
        :class:`~repro.connectome.group.GroupMatrix` (mutually exclusive
        with ``scans``).  In-process only; its data array is frozen like
        scan payloads.
    request_id:
        Correlates the response with the request; auto-assigned when empty.
    metadata:
        Free-form JSON-serializable annotations carried through to the
        response.
    """

    gallery: str
    scans: Optional[Sequence[ScanRecord]] = field(default=None, repr=False)
    probe: Optional[GroupMatrix] = field(default=None, repr=False)
    request_id: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.gallery = _check_gallery_name(self.gallery)
        if self.scans is not None and self.probe is not None:
            raise ValidationError(
                "an IdentifyRequest takes scans or a pre-built probe, not both"
            )
        if self.scans is not None:
            self.scans = list(self.scans)
        if not self.request_id:
            self.request_id = _next_request_id("idreq")

    @property
    def n_probes(self) -> Optional[int]:
        """Number of probe columns this request carries (``None`` = no payload)."""
        if self.scans is not None:
            return len(self.scans)
        if self.probe is not None:
            return self.probe.n_scans
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the scan/probe payload is dropped)."""
        return {
            "request_id": self.request_id,
            "gallery": self.gallery,
            "n_probes": self.n_probes,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "IdentifyRequest":
        """Rebuild the request envelope (without its in-process payload)."""
        return cls(
            gallery=payload["gallery"],
            request_id=payload.get("request_id", ""),
            metadata=dict(payload.get("metadata", {})),
        )


@dataclass
class EnrollRequest:
    """Enroll subjects into a named gallery (optionally creating it).

    Parameters
    ----------
    gallery:
        Target gallery name.
    scans:
        Identified reference scans to enroll.  In-process only.
    create:
        Build the gallery from these scans when the name is unknown
        (using the service's :class:`~repro.service.config.ServiceConfig`).
    """

    gallery: str
    scans: Optional[Sequence[ScanRecord]] = field(default=None, repr=False)
    create: bool = False
    request_id: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.gallery = _check_gallery_name(self.gallery)
        if self.scans is not None:
            self.scans = list(self.scans)
        self.create = bool(self.create)
        if not self.request_id:
            self.request_id = _next_request_id("enreq")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the scan payload is dropped)."""
        return {
            "request_id": self.request_id,
            "gallery": self.gallery,
            "n_scans": None if self.scans is None else len(self.scans),
            "create": self.create,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EnrollRequest":
        """Rebuild the request envelope (without its in-process payload)."""
        return cls(
            gallery=payload["gallery"],
            create=bool(payload.get("create", False)),
            request_id=payload.get("request_id", ""),
            metadata=dict(payload.get("metadata", {})),
        )


@dataclass
class IdentifyResponse:
    """Outcome of one :class:`IdentifyRequest`.

    Attributes
    ----------
    status:
        ``"ok"`` or ``"error"``.
    predicted_subject_ids / target_subject_ids:
        Per-probe predicted identity and the identity label the probe
        arrived with (per-position, matching the request's scan order).
    margins:
        Per-probe confidence margin (best minus second-best similarity).
    accuracy:
        Fraction of probes whose predicted identity equals the target label
        (meaningful when probes carry their true identities, as in
        evaluation workloads).
    batch_size:
        How many concurrent requests were coalesced into the micro-batch
        that served this one (1 = no coalescing happened).
    timings:
        Wall-clock sections of the serving batch, in seconds.
    match_result:
        The raw :class:`~repro.attack.matching.MatchResult` — bit-identical
        to a serial ``ReferenceGallery.identify`` of the same probes.
        In-process only.
    """

    request_id: str
    gallery: str
    status: str = "ok"
    predicted_subject_ids: List[str] = field(default_factory=list)
    target_subject_ids: List[str] = field(default_factory=list)
    margins: List[float] = field(default_factory=list)
    accuracy: Optional[float] = None
    n_gallery_subjects: int = 0
    batch_size: int = 1
    timings: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    match_result: Any = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """Whether the request was served without an error."""
        return self.status == "ok"

    @property
    def n_probes(self) -> int:
        """Number of probe columns that were identified."""
        return len(self.target_subject_ids)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the ``match_result`` object is dropped)."""
        return {
            "request_id": self.request_id,
            "gallery": self.gallery,
            "status": self.status,
            "predicted_subject_ids": list(self.predicted_subject_ids),
            "target_subject_ids": list(self.target_subject_ids),
            "margins": [float(margin) for margin in self.margins],
            "accuracy": None if self.accuracy is None else float(self.accuracy),
            "n_gallery_subjects": int(self.n_gallery_subjects),
            "batch_size": int(self.batch_size),
            "timings": {key: float(value) for key, value in self.timings.items()},
            "error": self.error,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "IdentifyResponse":
        """Rebuild a response from its :meth:`to_dict` payload."""
        return cls(
            request_id=payload["request_id"],
            gallery=payload["gallery"],
            status=payload.get("status", "ok"),
            predicted_subject_ids=list(payload.get("predicted_subject_ids", [])),
            target_subject_ids=list(payload.get("target_subject_ids", [])),
            margins=[float(m) for m in payload.get("margins", [])],
            accuracy=payload.get("accuracy"),
            n_gallery_subjects=int(payload.get("n_gallery_subjects", 0)),
            batch_size=int(payload.get("batch_size", 1)),
            timings=dict(payload.get("timings", {})),
            error=payload.get("error"),
            metadata=dict(payload.get("metadata", {})),
        )


@dataclass
class EnrollResponse:
    """Outcome of one :class:`EnrollRequest`."""

    request_id: str
    gallery: str
    status: str = "ok"
    enrolled: int = 0
    created: bool = False
    n_subjects: int = 0
    refit_count: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the enrollment succeeded."""
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view."""
        return {
            "request_id": self.request_id,
            "gallery": self.gallery,
            "status": self.status,
            "enrolled": int(self.enrolled),
            "created": bool(self.created),
            "n_subjects": int(self.n_subjects),
            "refit_count": int(self.refit_count),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EnrollResponse":
        """Rebuild a response from its :meth:`to_dict` payload."""
        return cls(
            request_id=payload["request_id"],
            gallery=payload["gallery"],
            status=payload.get("status", "ok"),
            enrolled=int(payload.get("enrolled", 0)),
            created=bool(payload.get("created", False)),
            n_subjects=int(payload.get("n_subjects", 0)),
            refit_count=int(payload.get("refit_count", 0)),
            error=payload.get("error"),
        )


@dataclass
class ServiceStats:
    """Point-in-time serving statistics snapshot.

    Attributes
    ----------
    requests / probes:
        Identify requests served and total probe columns across them.
    batches:
        Stacked matches executed (each serves one or more requests).
    coalesced_batches:
        Batches that actually merged more than one concurrent request.
    max_batch_size:
        Largest number of requests ever coalesced into one batch.
    errors:
        Requests that came back with ``status == "error"``.
    batchers:
        Live per-event-loop micro-batchers.  A well-behaved serving process
        runs every round of traffic on one event loop, so this stays at 1 —
        a higher number means callers are spinning up a fresh loop (and a
        fresh, never-warm batcher) per burst.
    galleries:
        Per-gallery identify-request counters.
    pruning:
        Per-gallery candidate-pruning counters, present only for galleries
        served through the indexed tier (``precision="indexed"``):
        ``candidates_scanned`` (columns the exact kernel re-ranked),
        ``columns_considered`` (columns a full scan would have touched),
        ``full_scans_avoided`` (their difference) and the derived
        ``pruning_ratio``.
    cache_kinds:
        Per-artifact-kind cache counters (hits/misses/disk hits), so an
        operator can verify the service is actually running warm.
    cache_dir:
        Location of the on-disk cache tier (``None`` = memory only).
    router:
        Routed-mode topology summary
        (:meth:`~repro.service.router.GalleryRouter.stats` fills it in):
        worker count, live workers, ring size, respawns, and per-worker
        request counters.  ``None`` for a single-process service.
    """

    requests: int = 0
    probes: int = 0
    batches: int = 0
    coalesced_batches: int = 0
    max_batch_size: int = 0
    errors: int = 0
    batchers: int = 0
    galleries: Dict[str, int] = field(default_factory=dict)
    pruning: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cache_kinds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cache_dir: Optional[str] = None
    router: Optional[Dict[str, Any]] = None

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests per stacked match (0.0 = never served)."""
        if self.batches == 0:
            return 0.0
        return self.requests / self.batches

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (includes the derived mean batch size)."""
        return {
            "requests": int(self.requests),
            "probes": int(self.probes),
            "batches": int(self.batches),
            "coalesced_batches": int(self.coalesced_batches),
            "max_batch_size": int(self.max_batch_size),
            "mean_batch_size": self.mean_batch_size,
            "errors": int(self.errors),
            "batchers": int(self.batchers),
            "galleries": dict(self.galleries),
            "pruning": {
                name: dict(counters) for name, counters in self.pruning.items()
            },
            "cache_kinds": {
                kind: dict(stats) for kind, stats in self.cache_kinds.items()
            },
            "cache_dir": self.cache_dir,
            "router": None if self.router is None else dict(self.router),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServiceStats":
        """Rebuild a snapshot from its :meth:`to_dict` payload."""
        return cls(
            requests=int(payload.get("requests", 0)),
            probes=int(payload.get("probes", 0)),
            batches=int(payload.get("batches", 0)),
            coalesced_batches=int(payload.get("coalesced_batches", 0)),
            max_batch_size=int(payload.get("max_batch_size", 0)),
            errors=int(payload.get("errors", 0)),
            batchers=int(payload.get("batchers", 0)),
            galleries=dict(payload.get("galleries", {})),
            pruning={
                name: dict(counters)
                for name, counters in payload.get("pruning", {}).items()
            },
            cache_kinds={
                kind: dict(stats)
                for kind, stats in payload.get("cache_kinds", {}).items()
            },
            cache_dir=payload.get("cache_dir"),
            router=(
                dict(payload["router"])
                if payload.get("router") is not None
                else None
            ),
        )

    def summary_lines(self) -> List[str]:
        """Plain-text operator summary (the CLI's ``serve`` output)."""
        lines = [
            f"requests served     : {self.requests} ({self.probes} probes, "
            f"{self.errors} errors)",
            f"stacked matches     : {self.batches} "
            f"({self.coalesced_batches} coalesced, "
            f"mean batch {self.mean_batch_size:.1f}, max {self.max_batch_size})",
            f"micro-batchers      : {self.batchers} event loop(s)",
            f"disk cache tier     : {self.cache_dir or '(memory only)'}",
        ]
        if self.router is not None:
            lines.append(
                f"router              : {self.router.get('alive_workers', 0)}/"
                f"{self.router.get('workers', 0)} workers alive, "
                f"ring size {self.router.get('ring_size', 0)}, "
                f"{self.router.get('respawns', 0)} respawn(s)"
            )
        for name in sorted(self.pruning):
            counters = self.pruning[name]
            lines.append(
                f"  - pruning[{name}]: "
                f"scanned={counters.get('candidates_scanned', 0):.0f} "
                f"avoided={counters.get('full_scans_avoided', 0):.0f} "
                f"ratio={counters.get('pruning_ratio', 0.0):.3f}"
            )
        for kind in sorted(self.cache_kinds):
            stats = self.cache_kinds[kind]
            lines.append(
                f"  - {kind:<13s}: hits={stats.get('hits', 0):.0f} "
                f"misses={stats.get('misses', 0):.0f} "
                f"disk_hits={stats.get('disk_hits', 0):.0f} "
                f"hit_rate={stats.get('hit_rate', 0.0):.2f}"
            )
        return lines

    def to_json(self) -> str:
        """Serialized snapshot (one JSON document)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
