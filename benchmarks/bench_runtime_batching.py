"""Benchmark: batched group-matrix construction vs the per-scan loop.

The batched runtime (``repro.runtime.batch``) builds a whole session's group
matrix with one batched GEMM; the legacy path loops over scans building one
:class:`~repro.connectome.connectome.Connectome` at a time.  This benchmark
times both on the same synthetic workload (default: 64 scans x 100 regions,
the acceptance workload), checks they agree to ``allclose``, and reports the
speedup.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_runtime_batching.py --scans 8 --regions 32
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.connectome.group import build_group_matrix
from repro.datasets.base import ScanRecord
from repro.runtime.batch import build_group_matrix_batched


def make_workload(n_scans: int, n_regions: int, n_timepoints: int, seed: int = 0):
    """Synthetic scan records with a shared low-rank structure plus noise."""
    rng = np.random.default_rng(seed)
    mixing = rng.standard_normal((n_regions, max(4, n_regions // 8)))
    scans = []
    for index in range(n_scans):
        sources = rng.standard_normal((mixing.shape[1], n_timepoints))
        timeseries = mixing @ sources + 0.5 * rng.standard_normal((n_regions, n_timepoints))
        scans.append(
            ScanRecord(
                subject_id=f"sub-{index:03d}",
                task="REST",
                session="BENCH",
                timeseries=timeseries,
            )
        )
    return scans


def run_batching_benchmark(
    n_scans: int = 64,
    n_regions: int = 100,
    n_timepoints: int = 100,
    repeats: int = 5,
    seed: int = 0,
) -> dict:
    """Time the per-scan loop against the batched path on one workload.

    Both paths are warmed first (also producing the outputs for the
    equivalence check), then timed interleaved with best-of-``repeats``, so
    scheduler noise and allocator warm-up hit both paths evenly.
    """
    scans = make_workload(n_scans, n_regions, n_timepoints, seed=seed)

    def loop_path():
        return build_group_matrix([scan.to_connectome() for scan in scans])

    def batched_path():
        return build_group_matrix_batched(scans)  # no cache: measure the build

    loop_group = loop_path()
    batched_group = batched_path()
    loop_s = float("inf")
    batched_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        loop_path()
        loop_s = min(loop_s, time.perf_counter() - start)
        start = time.perf_counter()
        batched_path()
        batched_s = min(batched_s, time.perf_counter() - start)
    return {
        "n_scans": n_scans,
        "n_regions": n_regions,
        "n_timepoints": n_timepoints,
        "loop_s": loop_s,
        "batched_s": batched_s,
        "speedup": loop_s / batched_s if batched_s > 0 else float("inf"),
        "allclose": bool(np.allclose(loop_group.data, batched_group.data)),
        "same_bookkeeping": loop_group.subject_ids == batched_group.subject_ids,
    }


def test_batched_beats_per_scan_loop(benchmark):
    """Acceptance workload: 64 scans x 100 regions, batched >= 3x faster.

    Timing on a loaded CI box is noisy, so up to three measurement rounds
    are taken and the best speedup is kept; correctness (allclose) must
    hold on every round.
    """
    def measure():
        best = None
        for _ in range(3):
            outcome = run_batching_benchmark(n_scans=64, n_regions=100, repeats=9)
            assert outcome["allclose"], "batched group matrix diverged from the loop path"
            assert outcome["same_bookkeeping"]
            if best is None or outcome["speedup"] > best["speedup"]:
                best = outcome
            if best["speedup"] >= 3.0:
                break
        return best

    outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        "\nper-scan loop {loop_s:.4f}s vs batched {batched_s:.4f}s "
        "-> {speedup:.1f}x".format(**outcome)
    )
    assert outcome["speedup"] >= 3.0, (
        f"batched path only {outcome['speedup']:.2f}x faster than the per-scan loop"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scans", type=int, default=64)
    parser.add_argument("--regions", type=int, default=100)
    parser.add_argument("--timepoints", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    outcome = run_batching_benchmark(
        n_scans=args.scans,
        n_regions=args.regions,
        n_timepoints=args.timepoints,
        repeats=args.repeats,
        seed=args.seed,
    )
    print(
        "workload: {n_scans} scans x {n_regions} regions x {n_timepoints} timepoints"
        .format(**outcome)
    )
    print("per-scan loop : {loop_s:.4f} s".format(**outcome))
    print("batched       : {batched_s:.4f} s".format(**outcome))
    print("speedup       : {speedup:.1f}x".format(**outcome))
    print("allclose      : {allclose}".format(**outcome))
    return 0 if outcome["allclose"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
