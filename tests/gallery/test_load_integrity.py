"""Integrity-digest tamper detection in :meth:`ReferenceGallery.load`.

The persisted archive is covered by a digest over *every* array plus the fit
parameters; these tests corrupt persisted state in ways a bit-flip, a partial
write, or a malicious edit could and assert the load fails loudly — and,
just as important, that a failed load never primes the artifact cache with
poisoned arrays.
"""

import json

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.gallery.reference import ReferenceGallery
from repro.runtime.cache import ArtifactCache


@pytest.fixture()
def saved_gallery(small_hcp, tmp_path):
    """A fitted gallery persisted to ``tmp_path / 'gal'``."""
    scans = small_hcp.generate_session("REST", encoding="LR", day=1)
    gallery = ReferenceGallery.from_scans(scans, n_features=40, cache=ArtifactCache())
    directory = gallery.save(tmp_path / "gal")
    return gallery, directory


def _corrupt_array(directory, name):
    """Flip one value of one persisted array inside the npz archive."""
    archive = directory / "gallery.npz"
    with np.load(archive) as data:
        arrays = {key: data[key].copy() for key in data.files}
    flat = arrays[name].reshape(-1)
    flat[0] = flat[0] + 1.0 if np.issubdtype(flat.dtype, np.floating) else flat[0] + 1
    np.savez_compressed(archive, **arrays)


class TestTamperDetection:
    def test_single_corrupted_signature_value_is_a_clear_error(self, saved_gallery):
        _, directory = saved_gallery
        _corrupt_array(directory, "signatures")
        with pytest.raises(ValidationError, match="integrity"):
            ReferenceGallery.load(directory, cache=ArtifactCache())

    def test_corrupted_leverage_scores_are_a_clear_error(self, saved_gallery):
        _, directory = saved_gallery
        _corrupt_array(directory, "leverage_scores")
        with pytest.raises(ValidationError, match="integrity"):
            ReferenceGallery.load(directory, cache=ArtifactCache())

    def test_tampered_fit_parameters_are_a_clear_error(self, saved_gallery):
        # Editing gallery.json (e.g. claiming a different n_features) breaks
        # the digest even though every array is untouched.
        _, directory = saved_gallery
        meta_path = directory / "gallery.json"
        meta = json.loads(meta_path.read_text())
        meta["n_features"] = meta["n_features"] - 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValidationError, match="integrity"):
            ReferenceGallery.load(directory, cache=ArtifactCache())

    def test_tampered_integrity_field_is_a_clear_error(self, saved_gallery):
        _, directory = saved_gallery
        meta_path = directory / "gallery.json"
        meta = json.loads(meta_path.read_text())
        meta["integrity"] = "0" * len(meta["integrity"])
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValidationError, match="integrity"):
            ReferenceGallery.load(directory, cache=ArtifactCache())

    def test_failed_load_does_not_prime_the_cache(self, saved_gallery):
        # A tampered archive must not leave poisoned leverage/gallery
        # artifacts behind for later fits to hit.
        _, directory = saved_gallery
        _corrupt_array(directory, "leverage_scores")
        cache = ArtifactCache()
        with pytest.raises(ValidationError):
            ReferenceGallery.load(directory, cache=cache)
        assert cache.stats("leverage").puts == 0
        assert cache.stats("gallery").puts == 0

    def test_untampered_archive_still_loads(self, saved_gallery):
        gallery, directory = saved_gallery
        loaded = ReferenceGallery.load(directory, cache=ArtifactCache())
        assert loaded.fingerprint == gallery.fingerprint
