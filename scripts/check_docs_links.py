"""Check relative links in README.md and docs/ (CI lint job).

The docs tree (``docs/protocol.md``, ``docs/architecture.md``,
``docs/serving.md``) and the README cross-link each other and the source
tree heavily; a rename silently strands readers.  This script extracts
every inline markdown link from the checked files and fails when a
relative target (optionally with a ``#fragment``) does not resolve to an
existing file or directory, or when a fragment names a heading the target
markdown file does not contain.

External links (``http(s)://``, ``mailto:``) are deliberately not fetched —
CI must not depend on the network.

Usage::

    python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target) — images share the same syntax.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks, where link-like text is code, not a link.
_FENCE_PATTERN = re.compile(r"^(```|~~~)")


def _heading_anchors(markdown: str) -> set:
    """GitHub-style anchor slugs of every heading in a markdown document."""
    anchors = set()
    in_fence = False
    for line in markdown.splitlines():
        if _FENCE_PATTERN.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        # Strip inline code/links down to their text before slugifying.
        title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)
        title = title.replace("`", "")
        slug = re.sub(r"[^\w\- ]", "", title.lower()).strip().replace(" ", "-")
        anchors.add(slug)
    return anchors


def _links(markdown: str):
    """Every inline link target outside fenced code blocks."""
    in_fence = False
    for line in markdown.splitlines():
        if _FENCE_PATTERN.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_PATTERN.finditer(line):
            yield match.group(1)


def check_file(path: Path, root: Path) -> list:
    """Broken-link descriptions for one markdown file."""
    problems = []
    markdown = path.read_text(encoding="utf-8")
    for target in _links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw, _, fragment = target.partition("#")
        if not raw:  # same-file anchor
            if fragment and fragment not in _heading_anchors(markdown):
                problems.append(f"{path.relative_to(root)}: missing anchor #{fragment}")
            continue
        resolved = (path.parent / raw).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(root)}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            anchors = _heading_anchors(resolved.read_text(encoding="utf-8"))
            if fragment not in anchors:
                problems.append(
                    f"{path.relative_to(root)}: missing anchor -> {target}"
                )
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = [root / "README.md"] + sorted((root / "docs").glob("**/*.md"))
    files = [path for path in files if path.exists()]
    if len(files) < 2:
        print("FAIL: expected README.md and a docs/ tree to check")
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path, root))
    for problem in problems:
        print(f"FAIL {problem}")
    checked = ", ".join(str(path.relative_to(root)) for path in files)
    print(f"checked {len(files)} file(s): {checked}")
    if problems:
        return 1
    print("all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
