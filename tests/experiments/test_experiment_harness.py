"""Tests for the per-figure experiment harness.

These tests run every experiment at a deliberately tiny scale: the goal is to
verify the harness plumbing (records, arrays, comparisons, markdown), not to
re-derive the paper's numbers — the benchmarks do that at the default scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    ADHDExperimentConfig,
    HCPExperimentConfig,
    defense_tradeoff,
    figure1_rest_similarity,
    figure2_task_similarity,
    figure5_cross_task_matrix,
    figure6_task_prediction,
    figure7_adhd_subtype1,
    figure8_adhd_subtype3,
    figure9_adhd_identification,
    generate_experiments_markdown,
    table1_performance_prediction,
    table2_multisite_noise,
)
from repro.reporting.experiment import ExperimentRecord


@pytest.fixture(scope="module")
def tiny_hcp_config():
    return HCPExperimentConfig(
        n_subjects=10,
        n_regions=36,
        n_timepoints=100,
        n_features=60,
        n_labelled_subjects=5,
        tsne_iterations=120,
        performance_repetitions=2,
        multisite_noise_levels=[0.1, 0.3],
        multisite_repetitions=1,
        multisite_n_timepoints=80,
        seed=5,
    )


@pytest.fixture(scope="module")
def tiny_adhd_config():
    return ADHDExperimentConfig(
        n_cases=6,
        n_controls=6,
        n_regions=30,
        n_timepoints=80,
        n_features=60,
        identification_repetitions=2,
        seed=5,
    )


class TestSimilarityExperiments:
    def test_figure1(self, tiny_hcp_config):
        record = figure1_rest_similarity(tiny_hcp_config)
        assert isinstance(record, ExperimentRecord)
        assert record.experiment_id == "figure1"
        similarity = record.arrays["similarity"]
        assert similarity.shape == (10, 10)
        assert record.metrics["contrast"] > 0

    def test_figure2(self, tiny_hcp_config):
        record = figure2_task_similarity(tiny_hcp_config)
        assert record.experiment_id == "figure2"
        assert "task_contrast" in record.metrics
        assert "rest_contrast" in record.metrics

    def test_figure7_and_8(self, tiny_adhd_config):
        record7 = figure7_adhd_subtype1(tiny_adhd_config)
        record8 = figure8_adhd_subtype3(tiny_adhd_config)
        assert record7.experiment_id == "figure7"
        assert record8.experiment_id == "figure8"
        assert record7.arrays["similarity"].shape[0] == len(
            [d for d in ("adhd_subtype_1",) ]
        ) * 2 or record7.arrays["similarity"].shape[0] >= 1


class TestIdentificationExperiments:
    def test_figure5(self, tiny_hcp_config):
        tasks = ["REST", "LANGUAGE", "MOTOR"]
        record = figure5_cross_task_matrix(tiny_hcp_config, tasks=tasks)
        accuracy = record.arrays["accuracy"]
        assert accuracy.shape == (3, 3)
        assert np.all((accuracy >= 0) & (accuracy <= 1))
        assert record.configuration["tasks"] == tasks

    def test_figure9(self, tiny_adhd_config):
        record = figure9_adhd_identification(tiny_adhd_config)
        assert 0.0 <= record.metrics["full_cohort_accuracy"] <= 1.0
        assert 0.0 <= record.metrics["train_test_accuracy_mean"] <= 1.0

    def test_table2(self, tiny_hcp_config, tiny_adhd_config):
        record = table2_multisite_noise(tiny_hcp_config, tiny_adhd_config)
        assert record.arrays["hcp_accuracy"].shape == (2,)
        assert record.arrays["adhd_accuracy"].shape == (2,)
        assert np.all(record.arrays["noise_levels"] == [0.1, 0.3])


class TestInferenceExperiments:
    def test_figure6(self, tiny_hcp_config):
        record = figure6_task_prediction(tiny_hcp_config)
        embedding = record.arrays["embedding"]
        assert embedding.shape == (10 * 8, 2)
        assert 0.0 <= record.metrics["overall_accuracy"] <= 1.0

    def test_table1(self, tiny_hcp_config):
        record = table1_performance_prediction(tiny_hcp_config, tasks=["LANGUAGE"])
        assert "language_test_nrmse" in record.metrics
        assert record.arrays["test_nrmse"].shape == (1,)


class TestDefenseExperiment:
    def test_defense_tradeoff(self, tiny_hcp_config):
        record = defense_tradeoff(tiny_hcp_config, noise_scales=[0.0, 6.0])
        assert record.arrays["attack_accuracy"].shape == (2,)
        assert record.arrays["attack_accuracy"][1] <= record.arrays["attack_accuracy"][0]


class TestMarkdownReport:
    def test_generate_markdown(self, tiny_hcp_config, tmp_path):
        records = {
            "figure1": figure1_rest_similarity(tiny_hcp_config),
        }
        output = tmp_path / "EXPERIMENTS.md"
        text = generate_experiments_markdown(records, output_path=str(output), preamble="Tiny run.")
        assert output.exists()
        assert "# EXPERIMENTS" in text
        assert "figure1" in text
        assert "Tiny run." in text
