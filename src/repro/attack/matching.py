"""Cross-dataset subject matching.

After feature selection, the attack measures the Pearson correlation between
every reference subject and every target subject in the reduced feature space
and predicts that each target subject is the reference subject they correlate
with most strongly (paper Section 3.1.1: "Pairs of subjects with high
correlation correspond to predicted matches").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.connectome.group import GroupMatrix
from repro.exceptions import AttackError, ValidationError
from repro.utils.stats import pairwise_pearson
from repro.utils.validation import check_matrix


@dataclass
class MatchResult:
    """Outcome of matching a target dataset against a reference dataset.

    Attributes
    ----------
    similarity:
        ``(n_reference, n_target)`` correlation matrix in the reduced
        feature space.
    predicted_reference_index:
        For every target column, the index of the best-matching reference
        column.
    reference_subject_ids / target_subject_ids:
        Subject bookkeeping carried through from the group matrices.
    """

    similarity: np.ndarray
    predicted_reference_index: np.ndarray
    reference_subject_ids: List[str]
    target_subject_ids: List[str]

    @property
    def predicted_subject_ids(self) -> List[str]:
        """Predicted identity (reference subject id) for every target scan."""
        return [
            self.reference_subject_ids[int(i)] for i in self.predicted_reference_index
        ]

    def accuracy(self) -> float:
        """Fraction of target scans whose predicted identity is correct."""
        correct = [
            predicted == actual
            for predicted, actual in zip(self.predicted_subject_ids, self.target_subject_ids)
        ]
        return float(np.mean(correct))

    def correct_mask(self) -> np.ndarray:
        """Boolean mask over target scans marking correct identifications."""
        return np.asarray(
            [
                predicted == actual
                for predicted, actual in zip(
                    self.predicted_subject_ids, self.target_subject_ids
                )
            ],
            dtype=bool,
        )

    def margin(self) -> np.ndarray:
        """Confidence margin per target scan: best minus second-best similarity.

        With a single reference subject there is no second-best candidate, so
        the margin degenerates to the best similarity itself: the prediction
        is unopposed and its confidence is exactly how well the only
        candidate matches (a zero here would wrongly read as "no confidence").
        """
        if self.similarity.shape[0] < 2:
            return self.similarity[0, :].copy()
        sorted_similarities = np.sort(self.similarity, axis=0)
        return sorted_similarities[-1, :] - sorted_similarities[-2, :]


def prepare_match_inputs(
    reference: np.ndarray,
    target: np.ndarray,
    reference_subject_ids: Optional[List[str]] = None,
    target_subject_ids: Optional[List[str]] = None,
):
    """Shared validation/defaulting prologue of the matching entry points.

    Checks the matrices, the shared feature space, the two-feature minimum,
    and the id lengths; fills in positional subject labels when none are
    given.  Used by :func:`match_subjects` and the gallery's sharded
    :func:`~repro.gallery.matching.match_against_gallery`, so the matching
    contract lives in exactly one place.
    """
    ref = check_matrix(reference, name="reference")
    tgt = check_matrix(target, name="target")
    if ref.shape[0] != tgt.shape[0]:
        raise AttackError(
            "reference and target must share the feature space, "
            f"got {ref.shape[0]} and {tgt.shape[0]} features"
        )
    if ref.shape[0] < 2:
        raise AttackError("at least two features are required for correlation matching")

    if reference_subject_ids is None:
        reference_subject_ids = [f"ref-{i}" for i in range(ref.shape[1])]
    if target_subject_ids is None:
        target_subject_ids = [f"tgt-{i}" for i in range(tgt.shape[1])]
    if len(reference_subject_ids) != ref.shape[1]:
        raise ValidationError("reference_subject_ids length does not match reference columns")
    if len(target_subject_ids) != tgt.shape[1]:
        raise ValidationError("target_subject_ids length does not match target columns")
    return ref, tgt, list(reference_subject_ids), list(target_subject_ids)


def match_subjects(
    reference: np.ndarray,
    target: np.ndarray,
    reference_subject_ids: Optional[List[str]] = None,
    target_subject_ids: Optional[List[str]] = None,
) -> MatchResult:
    """Match target columns to reference columns by Pearson correlation.

    Parameters
    ----------
    reference:
        ``(n_features, n_reference)`` reduced group matrix of the
        de-anonymized dataset.
    target:
        ``(n_features, n_target)`` reduced group matrix of the anonymous
        dataset (same feature space).
    reference_subject_ids / target_subject_ids:
        Optional identities; default to positional labels.
    """
    ref, tgt, reference_subject_ids, target_subject_ids = prepare_match_inputs(
        reference, target, reference_subject_ids, target_subject_ids
    )
    similarity = pairwise_pearson(ref, tgt)
    predictions = np.argmax(similarity, axis=0)
    return MatchResult(
        similarity=similarity,
        predicted_reference_index=predictions,
        reference_subject_ids=list(reference_subject_ids),
        target_subject_ids=list(target_subject_ids),
    )


def match_group_matrices(
    reference: GroupMatrix,
    target: GroupMatrix,
    feature_indices: Optional[np.ndarray] = None,
) -> MatchResult:
    """Convenience wrapper matching two :class:`GroupMatrix` objects."""
    ref_data = reference.data
    tgt_data = target.data
    if feature_indices is not None:
        feature_indices = np.asarray(feature_indices, dtype=int)
        ref_data = ref_data[feature_indices, :]
        tgt_data = tgt_data[feature_indices, :]
    return match_subjects(
        ref_data,
        tgt_data,
        reference_subject_ids=reference.subject_ids,
        target_subject_ids=target.subject_ids,
    )


def matching_accuracy(
    reference: np.ndarray,
    target: np.ndarray,
    reference_subject_ids: Optional[List[str]] = None,
    target_subject_ids: Optional[List[str]] = None,
) -> float:
    """Identification accuracy of correlation matching (shortcut)."""
    result = match_subjects(
        reference,
        target,
        reference_subject_ids=reference_subject_ids,
        target_subject_ids=target_subject_ids,
    )
    return result.accuracy()
