"""Z-score normalization of region time series.

The final temporal step before correlation: each region's series is scaled to
zero mean and unit variance (paper Section 3.1.1: "The time-series matrix ...
is z-score normalized").
"""

from __future__ import annotations

import numpy as np

from repro.utils.stats import zscore
from repro.utils.validation import check_matrix


class ZScoreNormalization:
    """Z-score each region time series (row-wise)."""

    def __init__(self, ddof: int = 0):
        if ddof < 0:
            raise ValueError(f"ddof must be non-negative, got {ddof}")
        self.ddof = int(ddof)

    def apply(self, timeseries: np.ndarray) -> np.ndarray:
        """Return the row-wise z-scored matrix."""
        ts = check_matrix(timeseries, name="timeseries", min_cols=2)
        return zscore(ts, axis=1, ddof=self.ddof)
