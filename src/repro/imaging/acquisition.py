"""Scanner / acquisition simulation.

Renders region-level BOLD time series into a 4-D voxel volume and injects the
artifacts a real scanner produces — thermal noise, scanner drift, a smooth
multiplicative bias field (magnetic-field non-uniformity), subject head
motion, and bright static skull tissue.  The preprocessing pipeline
(:mod:`repro.imaging.preprocessing`) then has to remove them, mirroring the
"minimal preprocessing pipeline" the paper relies on (Figure 4).

:class:`SiteProfile` additionally captures the site-to-site differences used
by the multi-site experiment (paper Section 3.3.5): per-site gain, baseline
offset and extra noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.imaging.atlas import Atlas
from repro.imaging.phantom import BrainPhantom
from repro.imaging.volume import Volume4D
from repro.utils.rng import RandomStateLike, as_rng
from repro.utils.validation import check_matrix


@dataclass
class AcquisitionParameters:
    """Artifact magnitudes injected by :class:`ScannerSimulator`.

    All amplitudes are expressed relative to the BOLD signal's unit standard
    deviation, so ``thermal_noise_std=0.4`` means voxel-level noise with 40 %
    of the regional signal scale.
    """

    tr: float = 0.72
    baseline_intensity: float = 100.0
    bold_amplitude: float = 2.0
    thermal_noise_std: float = 0.4
    drift_amplitude: float = 1.0
    drift_period_s: float = 120.0
    bias_field_strength: float = 0.15
    motion_max_shift_voxels: int = 1
    motion_n_events: int = 2
    skull_intensity: float = 60.0
    skull_noise_std: float = 0.5

    def __post_init__(self):
        if self.tr <= 0:
            raise ValidationError(f"tr must be positive, got {self.tr}")
        if self.baseline_intensity <= 0:
            raise ValidationError("baseline_intensity must be positive")
        for name in (
            "bold_amplitude",
            "thermal_noise_std",
            "drift_amplitude",
            "bias_field_strength",
            "skull_intensity",
            "skull_noise_std",
        ):
            if getattr(self, name) < 0:
                raise ValidationError(f"{name} must be non-negative")
        if self.motion_max_shift_voxels < 0 or self.motion_n_events < 0:
            raise ValidationError("motion parameters must be non-negative")


@dataclass
class SiteProfile:
    """Per-site acquisition characteristics for multi-site simulation.

    Parameters
    ----------
    site_id:
        Identifier of the imaging site.
    gain:
        Multiplicative scanner gain applied to the BOLD signal.
    offset:
        Additive baseline shift (arbitrary units).
    extra_noise_std:
        Additional site-specific noise standard deviation, expressed as a
        fraction of the per-region signal standard deviation (this is the
        "noise variance as a fraction of signal variance" knob of Table 2).
    """

    site_id: str
    gain: float = 1.0
    offset: float = 0.0
    extra_noise_std: float = 0.0

    def __post_init__(self):
        if self.gain <= 0:
            raise ValidationError(f"gain must be positive, got {self.gain}")
        if self.extra_noise_std < 0:
            raise ValidationError("extra_noise_std must be non-negative")

    def apply(
        self, timeseries: np.ndarray, random_state: RandomStateLike = None
    ) -> np.ndarray:
        """Apply the site effect to a ``(regions, time)`` matrix.

        Noise is matched to each region's own scale: its standard deviation is
        ``extra_noise_std`` times the region's standard deviation and its mean
        equals the region's mean scaled into the noise (the paper adds noise
        "whose mean is equal to the mean of the original signal and whose
        variance is a fraction of the variance of the original signal").
        """
        ts = check_matrix(timeseries, name="timeseries")
        rng = as_rng(random_state)
        out = self.gain * ts + self.offset
        if self.extra_noise_std > 0:
            region_std = ts.std(axis=1, keepdims=True)
            noise = rng.standard_normal(ts.shape) * (self.extra_noise_std * region_std)
            out = out + noise
        return out


class ScannerSimulator:
    """Render region time series into an artifact-laden 4-D acquisition.

    Parameters
    ----------
    phantom:
        The digital head phantom to paint into.
    atlas:
        Parcellation assigning brain voxels to regions; its region count must
        match the number of rows of the time series passed to :meth:`acquire`.
    parameters:
        Artifact magnitudes; defaults are moderate and fully recoverable by
        the preprocessing pipeline.
    """

    def __init__(
        self,
        phantom: BrainPhantom,
        atlas: Atlas,
        parameters: Optional[AcquisitionParameters] = None,
    ):
        if atlas.spatial_shape != phantom.shape:
            raise ValidationError(
                f"atlas shape {atlas.spatial_shape} does not match phantom shape "
                f"{phantom.shape}"
            )
        self.phantom = phantom
        self.atlas = atlas
        self.parameters = parameters or AcquisitionParameters()

    # ------------------------------------------------------------------ #
    # Artifact building blocks (exposed for unit testing)
    # ------------------------------------------------------------------ #
    def _bias_field(self, rng: np.random.Generator) -> np.ndarray:
        """Smooth multiplicative bias field across the volume."""
        nx, ny, nz = self.phantom.shape
        x = np.linspace(-1.0, 1.0, nx)[:, None, None]
        y = np.linspace(-1.0, 1.0, ny)[None, :, None]
        z = np.linspace(-1.0, 1.0, nz)[None, None, :]
        coefficients = rng.uniform(-1.0, 1.0, size=6)
        field = (
            coefficients[0] * x
            + coefficients[1] * y
            + coefficients[2] * z
            + coefficients[3] * x * y
            + coefficients[4] * y * z
            + coefficients[5] * x * z
        )
        field = field / max(np.abs(field).max(), 1e-12)
        return 1.0 + self.parameters.bias_field_strength * field

    def _drift(self, n_timepoints: int, rng: np.random.Generator) -> np.ndarray:
        """Slow scanner drift (linear trend plus a slow cosine)."""
        times = np.arange(n_timepoints) * self.parameters.tr
        slope = rng.uniform(-1.0, 1.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        period = max(self.parameters.drift_period_s, self.parameters.tr * 4)
        drift = slope * (times / max(times[-1], 1.0)) + 0.5 * np.cos(
            2.0 * np.pi * times / period + phase
        )
        return self.parameters.drift_amplitude * drift

    def _motion_schedule(
        self, n_timepoints: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-frame integer translation (npoints x 3) produced by head motion."""
        shifts = np.zeros((n_timepoints, 3), dtype=int)
        max_shift = self.parameters.motion_max_shift_voxels
        n_events = self.parameters.motion_n_events
        if max_shift == 0 or n_events == 0 or n_timepoints < 4:
            return shifts
        event_times = np.sort(
            rng.choice(np.arange(2, n_timepoints), size=min(n_events, n_timepoints - 2), replace=False)
        )
        current = np.zeros(3, dtype=int)
        next_event = 0
        for t in range(n_timepoints):
            if next_event < len(event_times) and t == event_times[next_event]:
                current = rng.integers(-max_shift, max_shift + 1, size=3)
                next_event += 1
            shifts[t] = current
        return shifts

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def acquire(
        self,
        region_timeseries: np.ndarray,
        random_state: RandomStateLike = None,
        subject_id: Optional[str] = None,
        session: Optional[str] = None,
        task: Optional[str] = None,
    ) -> Volume4D:
        """Simulate one scan of a subject whose regional BOLD activity is given.

        Parameters
        ----------
        region_timeseries:
            ``(n_regions, n_timepoints)`` matrix of region BOLD signals in
            z-scored units.
        random_state:
            Seed for all stochastic artifacts.
        subject_id, session, task:
            Provenance metadata copied onto the returned volume.

        Returns
        -------
        Volume4D
            Simulated acquisition with baseline intensity, BOLD modulation,
            bias field, drift, motion, skull signal, and thermal noise.
        """
        ts = check_matrix(region_timeseries, name="region_timeseries", min_cols=2)
        if ts.shape[0] != self.atlas.n_regions:
            raise ValidationError(
                f"region_timeseries has {ts.shape[0]} regions, atlas defines "
                f"{self.atlas.n_regions}"
            )
        rng = as_rng(random_state)
        params = self.parameters
        n_timepoints = ts.shape[1]
        nx, ny, nz = self.phantom.shape

        data = np.zeros((nx, ny, nz, n_timepoints), dtype=np.float64)

        # Paint BOLD signal region by region on top of the tissue baseline.
        labels = self.atlas.labels
        bold = params.baseline_intensity + params.bold_amplitude * ts
        for region in range(1, self.atlas.n_regions + 1):
            mask = labels == region
            if not mask.any():
                continue
            data[mask, :] = bold[region - 1][None, :]

        # Static skull tissue with its own noise (to be stripped later).
        skull = self.phantom.skull_mask
        if skull.any():
            skull_signal = params.skull_intensity + params.skull_noise_std * rng.standard_normal(
                (int(skull.sum()), n_timepoints)
            )
            data[skull, :] = skull_signal

        # Scanner drift applied to every head voxel.
        drift = self._drift(n_timepoints, rng)
        head = self.phantom.head_mask
        data[head, :] += drift[None, :]

        # Smooth multiplicative bias field (magnetic-field non-uniformity).
        bias = self._bias_field(rng)
        data *= bias[..., None]

        # Thermal noise everywhere.
        if params.thermal_noise_std > 0:
            data += params.thermal_noise_std * rng.standard_normal(data.shape)

        # Head motion: rigid integer translations of individual frames.
        shifts = self._motion_schedule(n_timepoints, rng)
        for t in range(n_timepoints):
            shift = shifts[t]
            if np.any(shift != 0):
                data[..., t] = np.roll(data[..., t], shift=tuple(shift), axis=(0, 1, 2))

        volume = Volume4D(
            data=data,
            tr=params.tr,
            subject_id=subject_id,
            session=session,
            task=task,
        )
        # Ground-truth artifact parameters, used by preprocessing tests.
        volume.true_motion_ = shifts
        volume.true_bias_field_ = bias
        return volume
