"""Tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    nrmse_percent,
    r2_score,
    top_k_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0

    def test_half(self):
        assert accuracy_score([0, 1, 2, 3], [0, 1, 9, 9]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(Exception):
            accuracy_score([1, 2], [1])

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix, labels = confusion_matrix(["a", "b", "a"], ["a", "b", "a"])
        assert labels == ["a", "b"]
        np.testing.assert_array_equal(matrix, [[2, 0], [0, 1]])

    def test_off_diagonal_counts(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["b", "a", "b"])
        index = {label: i for i, label in enumerate(labels)}
        assert matrix[index["a"], index["b"]] == 1

    def test_rows_sum_to_true_counts(self):
        y_true = ["x"] * 5 + ["y"] * 3
        y_pred = ["x", "y", "x", "x", "y", "y", "x", "y"]
        matrix, labels = confusion_matrix(y_true, y_pred)
        index = {label: i for i, label in enumerate(labels)}
        assert matrix[index["x"]].sum() == 5
        assert matrix[index["y"]].sum() == 3

    def test_explicit_labels_restrict_matrix(self):
        with pytest.raises(ValidationError):
            confusion_matrix(["a", "c"], ["a", "a"], labels=["a", "b"])


class TestRegressionMetrics:
    def test_mse_and_mae(self):
        y_true = np.array([1.0, 2.0, 3.0])
        y_pred = np.array([1.0, 3.0, 5.0])
        assert mean_squared_error(y_true, y_pred) == pytest.approx(5.0 / 3.0)
        assert mean_absolute_error(y_true, y_pred) == pytest.approx(1.0)

    def test_r2_perfect_and_mean_predictor(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(4, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score(np.ones(5), np.ones(5)) == 0.0

    def test_nrmse_percent_is_percentage(self):
        y_true = np.array([0.0, 100.0])
        y_pred = np.array([10.0, 90.0])
        assert nrmse_percent(y_true, y_pred, normalization="range") == pytest.approx(10.0)


class TestTopK:
    def test_top1_equals_argmax_accuracy(self, rng):
        scores = rng.standard_normal((20, 5))
        truth = np.argmax(scores, axis=1)
        assert top_k_accuracy(scores, truth, k=1) == 1.0

    def test_topk_monotone_in_k(self, rng):
        scores = rng.standard_normal((50, 10))
        truth = rng.integers(0, 10, size=50)
        accuracies = [top_k_accuracy(scores, truth, k=k) for k in (1, 3, 10)]
        assert accuracies[0] <= accuracies[1] <= accuracies[2]
        assert accuracies[2] == 1.0

    def test_invalid_k_raises(self, rng):
        scores = rng.standard_normal((5, 3))
        with pytest.raises(ValidationError):
            top_k_accuracy(scores, [0] * 5, k=4)
