"""Uniform run records produced by the experiment runner.

Every spec executed by :class:`repro.runtime.runner.ExperimentRunner` yields
one :class:`RunResult`: the spec identity, the resolved seed, scalar metrics,
a timing breakdown, and (in-process only) the raw output object of the task.
Results serialize to JSON so batched runs can be archived and diffed.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.exceptions import ValidationError

PathLike = Union[str, Path]


@dataclass
class RunResult:
    """Outcome of one executed :class:`~repro.runtime.runner.ExperimentSpec`.

    Attributes
    ----------
    name / kind:
        Identity of the spec that produced this result.
    seed:
        The deterministic seed the runner resolved for the task.
    status:
        ``"ok"`` or ``"error"``.
    metrics:
        Scalar measurements reported by the task.
    timings:
        Named wall-clock sections in seconds; always contains ``total_s``.
    error:
        Stringified exception when ``status == "error"``.
    output:
        The task's raw in-process output (e.g. an ``ExperimentRecord`` or an
        ``AttackReport``); excluded from serialization.
    """

    name: str
    kind: str
    seed: int
    status: str = "ok"
    metrics: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    output: Any = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """Whether the task completed without raising."""
        return self.status == "ok"

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the task."""
        return float(self.timings.get("total_s", 0.0))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the ``output`` object is dropped)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "seed": int(self.seed),
            "status": self.status,
            "metrics": {key: _scalar(value) for key, value in self.metrics.items()},
            "timings": {key: float(value) for key, value in self.timings.items()},
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from its :meth:`to_dict` payload."""
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            seed=int(payload["seed"]),
            status=payload.get("status", "ok"),
            metrics=dict(payload.get("metrics", {})),
            timings=dict(payload.get("timings", {})),
            error=payload.get("error"),
        )


class TimingRecorder:
    """Collects named wall-clock sections for one task."""

    def __init__(self):
        self.timings: Dict[str, float] = {}

    @contextmanager
    def section(self, name: str):
        """Time a ``with`` block; repeated sections accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed


def write_results_json(results: Iterable[RunResult], path: PathLike) -> Path:
    """Serialize a batch of run results to one JSON document."""
    results = list(results)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "n_results": len(results),
        "n_ok": sum(1 for r in results if r.ok),
        "results": [result.to_dict() for result in results],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def load_results_json(path: PathLike) -> List[RunResult]:
    """Load run results previously written by :func:`write_results_json`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no results file at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return [RunResult.from_dict(item) for item in payload.get("results", [])]


def summarize_results(results: Iterable[RunResult]) -> str:
    """Human-readable per-spec summary table of a batch run."""
    lines = [f"{'spec':<28s} {'kind':<12s} {'status':<7s} {'total':>9s}  metrics"]
    for result in results:
        metrics = ", ".join(
            f"{key}={_scalar(value):.3f}"
            if isinstance(_scalar(value), float)
            else f"{key}={value}"
            for key, value in sorted(result.metrics.items())
        )
        lines.append(
            f"{result.name:<28.28s} {result.kind:<12.12s} {result.status:<7s} "
            f"{result.total_seconds:>8.3f}s  {metrics}"
        )
    return "\n".join(lines)


def _scalar(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (int, bool)):
        return value
    if isinstance(value, float):
        return value
    return value
