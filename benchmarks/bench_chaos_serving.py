"""Benchmark: chaos churn — the routed fleet under an injected fault schedule.

The router's failure story (:mod:`repro.service.router` +
:mod:`repro.service.resilience`) makes four promises that no fault-free
benchmark can check:

* **Correctness survives faults.**  Every identify that *succeeds* under
  injected worker crashes, hangs, corrupted/truncated IPC frames, and
  disk-cache I/O errors must be bit-identical to a fault-free replay of
  the same request against a single-process
  :class:`~repro.service.IdentificationService` over the same on-disk
  galleries.  Retries land on respawned workers that reload the same
  persisted shards; cache faults degrade to recomputes of content-keyed
  artifacts — neither may change a single byte of a response document.
* **Failures are bounded.**  Identify retries (bounded, idempotent-only)
  keep the client-visible error rate under a hard ceiling even while
  workers are being killed; a hung worker is detected by the per-request
  deadline and failed over within a bounded window instead of hanging the
  client forever.
* **Faults are observable.**  The schedule's injected hangs show up in
  ``worker_timeouts``, its process kills in ``respawns`` + the death log,
  and its disk faults in the aggregated ``disk_errors`` cache counter —
  the operator can see the chaos from the parent, not just feel it.
* **Nothing leaks.**  After the full schedule — including workers killed
  by ``os._exit`` mid-request — shutting the fleets down leaves zero
  ``repro-shm-*`` segments in ``/dev/shm`` and zero live worker children.

**Why the schedule is phased.**  :class:`~repro.runtime.faults.FaultPlan`
counters are per-process and a respawned worker starts a fresh plan, so
inside one fleet every incarnation replays the same schedule from index
zero — only the earliest process-ending rule would ever fire.  The chaos
schedule therefore runs as phases (crash → hang → corrupt → truncate →
cache-I/O), each a fresh fleet with one fault family over the *same*
shared gallery root, with continuous enroll churn and concurrent
identifies inside every phase, and the gates summed across phases.

Runnable standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_chaos_serving.py \
        --galleries 2 --subjects 8 --requests 6
"""

from __future__ import annotations

import argparse
import multiprocessing
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.hcp import HCPLikeDataset
from repro.service import (
    EnrollRequest,
    GalleryRegistry,
    GalleryRouter,
    IdentificationService,
    IdentifyRequest,
    ServiceConfig,
)
from repro.service.router import HashRing

#: Fleet size of every chaos phase.  Two workers keep the benchmark cheap
#: while still exercising cross-worker routing during failover.
CHAOS_WORKERS = 2

#: Per-request identify deadline of the chaos fleets.  Injected hangs
#: sleep far longer than this, so failover latency is deadline-driven.
DEFAULT_DEADLINE_S = 1.5

#: Extra identify attempts after a worker death/timeout (identify only).
DEFAULT_RETRY_ATTEMPTS = 2

#: Hard ceiling on the client-visible identify error rate across the whole
#: schedule.  Retries absorb most injected deaths; what remains (retry
#: budget exhausted mid-kill-storm) must stay a bounded minority.
DEFAULT_MAX_ERROR_RATE = 0.25

#: Gates on fault observability: the schedule injects enough faults that
#: the parent-side counters must show at least this much chaos.
DEFAULT_MIN_RESPAWNS = 3
DEFAULT_MIN_WORKER_TIMEOUTS = 1
DEFAULT_MIN_DISK_ERRORS = 1

#: Client-side backoff after a typed error response.  One worker death can
#: fail several concurrent requests at once and trip the arc's breaker;
#: a real client pauses on an error instead of tight-looping into the
#: fast-fail path, giving the health monitor's next ping time to heal it.
ERROR_BACKOFF_S = 0.05

#: Slack (seconds) added to the theoretical worst-case failover window
#: (deadline per attempt + backoff + respawn) when bounding the hang
#: phase's slowest identify.
FAILOVER_SLACK_S = 5.0

#: The injected fault schedule: one fault family per phase.  ``start``
#: indices are small so even smoke workloads reach them; process-ending
#: rules use ``limit=1`` and simply re-fire in the next incarnation,
#: which is what makes the churn continuous.
CHAOS_PHASES = (
    {
        "name": "crash",
        "rules": [{"site": "worker.crash", "start": 3, "limit": 1}],
        "fatal": True,
    },
    {
        "name": "hang",
        "rules": [{"site": "worker.hang", "start": 2, "limit": 1, "delay_s": 30.0}],
        "fatal": True,
    },
    {
        "name": "corrupt",
        "rules": [{"site": "ipc.corrupt_frame", "start": 3, "limit": 1}],
        "fatal": True,
    },
    {
        "name": "truncate",
        "rules": [{"site": "ipc.truncate_frame", "start": 3, "limit": 1}],
        "fatal": True,
    },
    {
        "name": "cache",
        "rules": [
            {"site": "cache.read_error", "start": 0, "every": 2, "limit": 6},
            {"site": "cache.write_error", "start": 1, "every": 3, "limit": 4},
            {"site": "worker.slow_reply", "start": 2, "every": 4, "limit": 2,
             "delay_s": 0.05},
        ],
        "fatal": False,
    },
)


def balanced_gallery_names(n_galleries: int, workers: int = CHAOS_WORKERS) -> list:
    """``n_galleries`` names the chaos ring spreads evenly over ``workers``."""
    ring = HashRing([f"worker-{index}" for index in range(workers)])
    per_worker = {member: [] for member in ring.members}
    quota, remainder = divmod(n_galleries, workers)
    candidate = 0
    names = []
    while len(names) < n_galleries:
        name = f"gal-{candidate:03d}"
        candidate += 1
        owner = ring.lookup(name)
        if len(per_worker[owner]) >= quota + (1 if remainder else 0):
            continue
        per_worker[owner].append(name)
        names.append(name)
    return sorted(names)


def build_chaos_workload(
    root: Path,
    n_galleries: int,
    n_subjects: int,
    n_regions: int,
    n_timepoints: int,
    n_features: int,
    churn_subjects: int,
    probes_per_request: int = 1,
    seed: int = 0,
):
    """Persist the identify galleries; return ``(probes, churn_scans)``.

    ``churn_scans`` is a separate cohort enrolled incrementally into
    per-phase churn galleries while the identify load runs.
    """
    config = ServiceConfig(n_features=n_features)
    probes = {}
    for index, name in enumerate(balanced_gallery_names(n_galleries)):
        dataset = HCPLikeDataset(
            n_subjects=n_subjects,
            n_regions=n_regions,
            n_timepoints=n_timepoints,
            random_state=seed + 101 * index,
        )
        registry = GalleryRegistry(root=root, config=config)
        try:
            registry.build(name, dataset.generate_session("REST", encoding="LR", day=1))
            registry.persist(name)
        finally:
            registry.close()
        probe_session = dataset.generate_session("REST", encoding="RL", day=2)
        probes[name] = list(probe_session[:probes_per_request])
    churn_dataset = HCPLikeDataset(
        n_subjects=max(2, churn_subjects),
        n_regions=n_regions,
        n_timepoints=n_timepoints,
        random_state=seed + 7919,
    )
    churn_scans = list(churn_dataset.generate_session("REST", encoding="LR", day=1))
    return probes, churn_scans


def _response_document(response) -> dict:
    """A response's comparable document: everything but per-run noise."""
    document = response.to_dict()
    document.pop("request_id", None)
    document.pop("timings", None)
    return document


def _shm_segments() -> list:
    """Live repro shared-memory segment names (the leak check)."""
    from repro.runtime.shm import SEGMENT_PREFIX

    shm_root = Path("/dev/shm")
    if not shm_root.exists():  # pragma: no cover - non-Linux
        return []
    return sorted(path.name for path in shm_root.glob(f"{SEGMENT_PREFIX}-*"))


def _router_children() -> list:
    """Live router worker child processes (the zombie check)."""
    return sorted(
        child.name
        for child in multiprocessing.active_children()
        if child.name.startswith("repro-router-")
    )


def _churn_driver(router, gallery: str, churn_scans, batch_size: int, stop):
    """Continuously enroll fresh subjects until the identify load finishes.

    Every batch targets the phase's churn gallery with ``create=True`` (the
    first batch builds it); under fatal faults an enroll may fail with the
    typed never-retried ``WorkerCrashed`` error — that is the contract, so
    failures are counted, not raised.
    """
    outcome = {"ok": 0, "errors": 0}
    cursor = 0
    while not stop.is_set() and cursor < len(churn_scans):
        batch = churn_scans[cursor:cursor + batch_size]
        cursor += batch_size
        response = router.enroll(
            EnrollRequest(gallery=gallery, scans=batch, create=True)
        )
        outcome["ok" if response.status == "ok" else "errors"] += 1
    return outcome


def _health_monitor(router, stop, interval_s: float = 0.1):
    """Poll ``healthz`` like a deployment monitor would.

    This is load-bearing, not cosmetic: a successful ping is what heals an
    open breaker, so without a monitor a kill-storm that trips an arc's
    breaker would leave it degraded (fast-failing) for the rest of the
    phase.  Returns the number of observed breaker heals.
    """
    heals = 0
    while not stop.is_set():
        try:
            document = router.healthz()
        except Exception:  # pragma: no cover - router closing under us
            break
        heals += sum(
            1 for entry in document.get("workers", {}).values()
            if entry.get("healed")
        )
        stop.wait(interval_s)
    return heals


def _drive_chaos_phase(router, probes, requests_per_gallery: int, reference):
    """Thread-per-gallery identify load; returns per-request outcomes.

    Each response is classified on the spot: bit-identical success,
    mismatched success (a correctness bug), or typed error (the bounded
    cost of the injected faults).
    """
    names = sorted(probes)
    outcomes = {
        name: {"ok": 0, "errors": 0, "mismatches": 0, "latencies_s": []}
        for name in names
    }
    barrier = threading.Barrier(len(names))

    def driver(name: str):
        entry = outcomes[name]
        barrier.wait()
        for _ in range(requests_per_gallery):
            start = time.perf_counter()
            response = router.identify(
                IdentifyRequest(gallery=name, scans=probes[name])
            )
            entry["latencies_s"].append(time.perf_counter() - start)
            if response.status != "ok":
                entry["errors"] += 1
                time.sleep(ERROR_BACKOFF_S)
            elif _response_document(response) == reference[name]:
                entry["ok"] += 1
            else:
                entry["mismatches"] += 1

    threads = [threading.Thread(target=driver, args=(name,)) for name in names]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def run_chaos_benchmark(
    n_galleries: int = 4,
    n_subjects: int = 12,
    n_regions: int = 16,
    n_timepoints: int = 60,
    n_features: int = 40,
    requests_per_gallery: int = 6,
    probes_per_request: int = 1,
    churn_batch: int = 2,
    deadline_s: float = DEFAULT_DEADLINE_S,
    retry_attempts: int = DEFAULT_RETRY_ATTEMPTS,
    max_resident_galleries: int = 2,
    seed: int = 0,
) -> dict:
    """Run the full phased fault schedule; return outcomes + gate inputs.

    Every phase spins a fresh 2-worker fleet over the same persisted
    galleries and shared disk-cache tier, injects its fault family via
    ``ServiceConfig.fault_plan``, and drives concurrent identifies plus an
    enroll-churn thread.  Success responses are compared bit-for-bit
    against a fault-free single-process replay captured up front.
    """
    if requests_per_gallery < 4:
        raise ValueError(
            "requests_per_gallery must be >= 4 so every phase's fault rule "
            f"(largest start index 3) actually fires, got {requests_per_gallery}"
        )
    segments_before = set(_shm_segments())
    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
        root = Path(tmp)
        churn_subjects = 1 + churn_batch * len(CHAOS_PHASES)
        probes, churn_scans = build_chaos_workload(
            root,
            n_galleries=n_galleries,
            n_subjects=n_subjects,
            n_regions=n_regions,
            n_timepoints=n_timepoints,
            n_features=n_features,
            churn_subjects=churn_subjects,
            probes_per_request=probes_per_request,
            seed=seed,
        )
        base_config = ServiceConfig(
            n_features=n_features,
            max_galleries=max(1, int(max_resident_galleries)),
            cache_dir=str(root / "cache"),
            request_deadline_s=float(deadline_s),
            retry_attempts=int(retry_attempts),
        )

        # The fault-free replay oracle: one plain in-process service, no
        # fault plan, same persisted galleries and disk-cache tier.
        serial_registry = GalleryRegistry(root=root, config=base_config)
        serial = IdentificationService(registry=serial_registry, config=base_config)
        try:
            reference = {
                name: _response_document(
                    serial.identify(IdentifyRequest(gallery=name, scans=scans))
                )
                for name, scans in probes.items()
            }
        finally:
            serial.close()

        phases = {}
        totals = {
            "requests": 0, "ok": 0, "errors": 0, "mismatches": 0,
            "respawns": 0, "worker_timeouts": 0, "disk_errors": 0,
            "churn_ok": 0, "churn_errors": 0,
        }
        all_latencies = []
        hang_max_latency_s = 0.0
        for phase in CHAOS_PHASES:
            config = base_config.replace(
                fault_plan={"seed": seed, "rules": [dict(r) for r in phase["rules"]]}
            )
            router = GalleryRouter(root, config=config, workers=CHAOS_WORKERS)
            try:
                stop = threading.Event()
                churn_result = {}
                monitor_result = {}

                def churn(result=churn_result, router=router, phase=phase):
                    result.update(_churn_driver(
                        router, f"churn-{phase['name']}", churn_scans,
                        churn_batch, stop,
                    ))

                def monitor(result=monitor_result, router=router):
                    result["heals"] = _health_monitor(router, stop)

                churn_thread = threading.Thread(target=churn)
                monitor_thread = threading.Thread(target=monitor)
                churn_thread.start()
                monitor_thread.start()
                try:
                    outcomes = _drive_chaos_phase(
                        router, probes, requests_per_gallery, reference
                    )
                finally:
                    stop.set()
                    churn_thread.join()
                    monitor_thread.join()
                stats = router.stats()
                disk_errors = sum(
                    int(entry.get("disk_errors", 0))
                    for entry in stats.cache_kinds.values()
                )
                latencies = [
                    sample
                    for entry in outcomes.values()
                    for sample in entry["latencies_s"]
                ]
                record = {
                    "requests": len(latencies),
                    "ok": sum(e["ok"] for e in outcomes.values()),
                    "errors": sum(e["errors"] for e in outcomes.values()),
                    "mismatches": sum(e["mismatches"] for e in outcomes.values()),
                    "respawns": router.respawns,
                    "worker_timeouts": router.worker_timeouts,
                    "disk_errors": disk_errors,
                    "deaths": router.deaths,
                    "churn_ok": churn_result.get("ok", 0),
                    "churn_errors": churn_result.get("errors", 0),
                    "breaker_heals": monitor_result.get("heals", 0),
                    "max_latency_ms": float(1e3 * max(latencies)),
                    "p50_latency_ms": float(1e3 * np.percentile(latencies, 50)),
                }
                phases[phase["name"]] = record
                for key in ("requests", "ok", "errors", "mismatches",
                            "respawns", "worker_timeouts", "disk_errors",
                            "churn_ok", "churn_errors"):
                    totals[key] += record[key]
                all_latencies.extend(latencies)
                if phase["name"] == "hang":
                    hang_max_latency_s = max(latencies)
            finally:
                router.close()

    leaked = sorted(set(_shm_segments()) - segments_before)
    failover_bound_s = float(deadline_s) * (1 + int(retry_attempts)) + FAILOVER_SLACK_S
    return {
        "n_galleries": n_galleries,
        "n_subjects": n_subjects,
        "n_regions": n_regions,
        "n_timepoints": n_timepoints,
        "requests_per_gallery": requests_per_gallery,
        "probes_per_request": probes_per_request,
        "deadline_s": float(deadline_s),
        "retry_attempts": int(retry_attempts),
        "workers": CHAOS_WORKERS,
        "phases": phases,
        "totals": totals,
        "error_rate": (
            totals["errors"] / totals["requests"] if totals["requests"] else 0.0
        ),
        "bitwise_equal": totals["mismatches"] == 0,
        "latency": {
            "p50_ms": float(1e3 * np.percentile(all_latencies, 50)),
            "p99_ms": float(1e3 * np.percentile(all_latencies, 99)),
            "max_ms": float(1e3 * max(all_latencies)),
        },
        "hang_max_latency_s": float(hang_max_latency_s),
        "failover_bound_s": failover_bound_s,
        "leaked_segments": leaked,
        "zombie_children": _router_children(),
    }


def evaluate_gates(
    outcome: dict,
    max_error_rate: float = DEFAULT_MAX_ERROR_RATE,
    min_respawns: int = DEFAULT_MIN_RESPAWNS,
    min_worker_timeouts: int = DEFAULT_MIN_WORKER_TIMEOUTS,
    min_disk_errors: int = DEFAULT_MIN_DISK_ERRORS,
) -> list:
    """The chaos hard gates; returns a list of human-readable failures."""
    failures = []
    totals = outcome["totals"]
    if not outcome["bitwise_equal"]:
        failures.append(
            f"{totals['mismatches']} successful response(s) diverged from the "
            "fault-free replay (correctness must survive faults bit-for-bit)"
        )
    if outcome["error_rate"] > max_error_rate:
        failures.append(
            f"identify error rate {outcome['error_rate']:.3f} exceeds the "
            f"{max_error_rate:.3f} ceiling ({totals['errors']}/{totals['requests']})"
        )
    if totals["respawns"] < min_respawns:
        failures.append(
            f"only {totals['respawns']} respawn(s) observed (schedule must "
            f"inject >= {min_respawns} worker deaths)"
        )
    if totals["worker_timeouts"] < min_worker_timeouts:
        failures.append(
            f"only {totals['worker_timeouts']} worker timeout(s) observed "
            f"(hang phase must trip the deadline >= {min_worker_timeouts}x)"
        )
    if totals["disk_errors"] < min_disk_errors:
        failures.append(
            f"only {totals['disk_errors']} disk-cache error(s) observed "
            f"(cache phase must inject >= {min_disk_errors})"
        )
    if outcome["hang_max_latency_s"] > outcome["failover_bound_s"]:
        failures.append(
            f"slowest hang-phase identify took {outcome['hang_max_latency_s']:.2f}s "
            f"> failover bound {outcome['failover_bound_s']:.2f}s (hung workers "
            "must fail over within the deadline budget)"
        )
    if outcome["leaked_segments"]:
        failures.append(f"leaked shm segments: {outcome['leaked_segments']}")
    if outcome["zombie_children"]:
        failures.append(f"leaked worker processes: {outcome['zombie_children']}")
    return failures


def trajectory_record(outcome: dict) -> dict:
    """The ``BENCH_chaos.json`` trajectory record of one benchmark outcome."""
    return {
        "benchmark": "chaos_serving",
        "workload": {
            "n_galleries": outcome["n_galleries"],
            "n_subjects": outcome["n_subjects"],
            "n_regions": outcome["n_regions"],
            "n_timepoints": outcome["n_timepoints"],
            "requests_per_gallery": outcome["requests_per_gallery"],
            "probes_per_request": outcome["probes_per_request"],
            "workers": outcome["workers"],
            "deadline_s": outcome["deadline_s"],
            "retry_attempts": outcome["retry_attempts"],
        },
        "phases": outcome["phases"],
        "totals": outcome["totals"],
        "error_rate": outcome["error_rate"],
        "bitwise_equal": outcome["bitwise_equal"],
        "latency": outcome["latency"],
        "hang_max_latency_s": outcome["hang_max_latency_s"],
        "failover_bound_s": outcome["failover_bound_s"],
        "leaked_segments": outcome["leaked_segments"],
        "zombie_children": outcome["zombie_children"],
        "gate_failures": evaluate_gates(outcome),
    }


def test_chaos_schedule_gates(benchmark):
    """Acceptance chaos run: full phased schedule, every hard gate enforced."""
    outcome = benchmark.pedantic(run_chaos_benchmark, rounds=1, iterations=1)
    failures = evaluate_gates(outcome)
    print(
        f"\nchaos: {outcome['totals']['ok']}/{outcome['totals']['requests']} "
        f"bit-identical, {outcome['totals']['respawns']} respawns, "
        f"{outcome['totals']['worker_timeouts']} timeouts, "
        f"{outcome['totals']['disk_errors']} disk errors, "
        f"p50 {outcome['latency']['p50_ms']:.1f} ms / "
        f"p99 {outcome['latency']['p99_ms']:.1f} ms"
    )
    assert not failures, "chaos gates failed:\n- " + "\n- ".join(failures)


@pytest.mark.slow
def test_chaos_soak(benchmark):
    """Soak variant: a longer schedule for nightly/manual runs."""
    outcome = benchmark.pedantic(
        lambda: run_chaos_benchmark(
            n_galleries=6, n_subjects=24, requests_per_gallery=16,
        ),
        rounds=1,
        iterations=1,
    )
    failures = evaluate_gates(outcome, min_respawns=8)
    assert not failures, "chaos soak gates failed:\n- " + "\n- ".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--galleries", type=int, default=4)
    parser.add_argument("--subjects", type=int, default=12)
    parser.add_argument("--regions", type=int, default=16)
    parser.add_argument("--timepoints", type=int, default=60)
    parser.add_argument("--features", type=int, default=40)
    parser.add_argument("--requests", type=int, default=6,
                        help="identify requests per gallery per phase (>= 4)")
    parser.add_argument("--probes", type=int, default=1,
                        help="probe scans per request")
    parser.add_argument("--deadline", type=float, default=DEFAULT_DEADLINE_S,
                        help="per-request identify deadline (seconds)")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRY_ATTEMPTS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-error-rate", type=float,
                        default=DEFAULT_MAX_ERROR_RATE)
    parser.add_argument("--min-respawns", type=int, default=DEFAULT_MIN_RESPAWNS)
    parser.add_argument("--min-timeouts", type=int,
                        default=DEFAULT_MIN_WORKER_TIMEOUTS)
    parser.add_argument("--min-disk-errors", type=int,
                        default=DEFAULT_MIN_DISK_ERRORS)
    args = parser.parse_args()
    outcome = run_chaos_benchmark(
        n_galleries=args.galleries,
        n_subjects=args.subjects,
        n_regions=args.regions,
        n_timepoints=args.timepoints,
        n_features=min(args.features, args.regions * (args.regions - 1) // 2),
        requests_per_gallery=args.requests,
        probes_per_request=args.probes,
        deadline_s=args.deadline,
        retry_attempts=args.retries,
        seed=args.seed,
    )
    for name, record in outcome["phases"].items():
        print(
            f"phase {name:<9}: {record['ok']}/{record['requests']} bit-identical, "
            f"{record['errors']} error(s), {record['respawns']} respawn(s), "
            f"{record['worker_timeouts']} timeout(s), "
            f"{record['disk_errors']} disk error(s), "
            f"churn {record['churn_ok']}+{record['churn_errors']}err, "
            f"max latency {record['max_latency_ms']:.0f} ms"
        )
    print(
        "totals        : error rate {error_rate:.3f}, bitwise equal "
        "{bitwise_equal}, p50 {p50:.1f} ms / p99 {p99:.1f} ms".format(
            error_rate=outcome["error_rate"],
            bitwise_equal=outcome["bitwise_equal"],
            p50=outcome["latency"]["p50_ms"],
            p99=outcome["latency"]["p99_ms"],
        )
    )
    failures = evaluate_gates(
        outcome,
        max_error_rate=args.max_error_rate,
        min_respawns=args.min_respawns,
        min_worker_timeouts=args.min_timeouts,
        min_disk_errors=args.min_disk_errors,
    )
    for failure in failures:
        print(f"GATE FAIL: {failure}")
    if not failures:
        print("all chaos gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
