"""Tests for the batched group-matrix construction path."""

import numpy as np
import pytest

from repro.connectome.correlation import correlation_connectome, vectorize_connectome
from repro.connectome.group import build_group_matrix
from repro.datasets.base import ScanRecord
from repro.exceptions import ValidationError
from repro.runtime.batch import (
    batch_correlation_connectomes,
    batch_group_features,
    batch_vectorize_connectomes,
    build_group_matrix_batched,
    stack_timeseries,
)
from repro.runtime.cache import ArtifactCache


def make_scans(n_scans, n_regions=20, n_timepoints=60, seed=0, jitter_timepoints=False):
    rng = np.random.default_rng(seed)
    scans = []
    for index in range(n_scans):
        timepoints = n_timepoints + (index % 3) * 10 if jitter_timepoints else n_timepoints
        scans.append(
            ScanRecord(
                subject_id=f"sub-{index:02d}",
                task="REST",
                session=f"S{index % 2}",
                timeseries=rng.standard_normal((n_regions, timepoints)),
            )
        )
    return scans


class TestBatchVsLoopEquivalence:
    def test_matches_per_scan_loop(self):
        scans = make_scans(7)
        loop = build_group_matrix([scan.to_connectome() for scan in scans])
        batched = build_group_matrix_batched(scans)
        np.testing.assert_allclose(batched.data, loop.data, atol=1e-12)
        assert batched.subject_ids == loop.subject_ids
        assert batched.tasks == loop.tasks
        assert batched.sessions == loop.sessions

    def test_matches_loop_with_fisher_transform(self):
        scans = make_scans(5, seed=3)
        loop = build_group_matrix([scan.to_connectome(fisher=True) for scan in scans])
        batched = build_group_matrix_batched(scans, fisher=True)
        np.testing.assert_allclose(batched.data, loop.data, atol=1e-12)

    def test_mixed_run_lengths_scatter_back_in_order(self):
        scans = make_scans(9, jitter_timepoints=True)
        loop = build_group_matrix([scan.to_connectome() for scan in scans])
        batched = build_group_matrix_batched(scans)
        np.testing.assert_allclose(batched.data, loop.data, atol=1e-12)
        assert batched.subject_ids == loop.subject_ids

    def test_constant_region_matches_per_scan_semantics(self):
        scans = make_scans(3)
        frozen = scans[1].timeseries.copy()
        frozen[4, :] = 2.5  # constant region: correlates 0 with everything
        scans[1] = ScanRecord(
            subject_id=scans[1].subject_id,
            task=scans[1].task,
            session=scans[1].session,
            timeseries=frozen,
        )
        loop = build_group_matrix([scan.to_connectome() for scan in scans])
        batched = build_group_matrix_batched(scans)
        np.testing.assert_allclose(batched.data, loop.data, atol=1e-12)

    def test_group_matrix_cache_round_trip(self):
        cache = ArtifactCache()
        scans = make_scans(4)
        first = build_group_matrix_batched(scans, cache=cache)
        second = build_group_matrix_batched(scans, cache=cache)
        stats = cache.stats("group_matrix")
        assert stats.misses == 1
        assert stats.hits == 1
        np.testing.assert_array_equal(first.data, second.data)


class TestBatchPrimitives:
    def test_batch_correlation_matches_single_scan_helper(self):
        scans = make_scans(4, seed=7)
        stack = stack_timeseries(scans)
        batched = batch_correlation_connectomes(stack)
        for index, scan in enumerate(scans):
            np.testing.assert_allclose(
                batched[index], correlation_connectome(scan.timeseries), atol=1e-12
            )

    def test_batch_correlation_fisher_keeps_unit_diagonal(self):
        stack = stack_timeseries(make_scans(3, seed=1))
        batched = batch_correlation_connectomes(stack, fisher=True)
        for index in range(batched.shape[0]):
            np.testing.assert_allclose(np.diag(batched[index]), 1.0)

    def test_batch_vectorize_matches_triangle_ordering(self):
        stack = stack_timeseries(make_scans(3, seed=2))
        connectomes = batch_correlation_connectomes(stack)
        vectors = batch_vectorize_connectomes(connectomes)
        for index in range(connectomes.shape[0]):
            np.testing.assert_allclose(
                vectors[index], vectorize_connectome(connectomes[index]), atol=1e-12
            )

    def test_batch_group_features_fused_path_agrees(self):
        stack = stack_timeseries(make_scans(4, seed=5))
        fused = batch_group_features(stack)
        two_step = batch_vectorize_connectomes(batch_correlation_connectomes(stack))
        np.testing.assert_allclose(fused, two_step, atol=1e-12)


class TestValidation:
    def test_zero_scans_rejected(self):
        with pytest.raises(ValidationError, match="zero scans"):
            build_group_matrix_batched([])

    def test_region_mismatch_rejected(self):
        scans = make_scans(2) + make_scans(1, n_regions=12, seed=9)
        with pytest.raises(ValidationError, match="same number of regions"):
            build_group_matrix_batched(scans)

    def test_stack_requires_uniform_shapes(self):
        with pytest.raises(ValidationError, match="share one"):
            stack_timeseries(make_scans(4, jitter_timepoints=True))

    def test_non_3d_stack_rejected(self):
        with pytest.raises(ValidationError, match="stack"):
            batch_group_features(np.zeros((10, 20)))

    def test_nan_stack_rejected(self):
        stack = np.zeros((2, 4, 8))
        stack[1, 2, 3] = np.nan
        with pytest.raises(ValidationError, match="NaN"):
            batch_group_features(stack)
