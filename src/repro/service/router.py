"""Gallery router: the data plane of multi-process scale-out.

One :class:`~repro.service.service.IdentificationService` is one process and
one GIL.  :class:`GalleryRouter` turns the servable process into a servable
fleet — but since the control-plane split it owns only the **request path**:
route a gallery name through the fleet's consistent-hash ring, frame the
request onto the owning worker's data channel, apply the retry/breaker
policy, and unwrap the reply.  Everything about *who is in the fleet* —
ring membership, worker spawn/reap/respawn, live ``add_worker`` /
``remove_worker`` resizes, breaker registry, stats carry-forward — lives in
the control plane (:class:`~repro.service.fleet.FleetControlPlane`,
exposed as :attr:`GalleryRouter.fleet`).

The router exposes the same facade the HTTP front end already serves
(``identify`` / ``identify_async`` / ``enroll`` / ``stats`` / ``healthz`` /
``close`` plus a name-only ``registry`` view, and now ``add_worker`` /
``remove_worker`` for ``POST /admin/workers``) — so ``serve
--router-workers N`` swaps the single service for a fleet without touching
the HTTP layer's routes or codecs.

**Correctness.**  Requests travel to workers over the length-prefixed IPC
transport of :mod:`repro.service.worker`, which reuses the HTTP binary frame
codec — scan float64 bit patterns survive the hop exactly, and the worker
serves them through the same sync ``identify`` path as a single-process
deployment.  Routed identify responses are therefore bit-identical to
single-process serving under either HTTP codec (pinned by
``benchmarks/bench_router_scaling.py``) — **including during a live
resize** (pinned by ``benchmarks/bench_fleet_churn.py``): remapping a
gallery only changes where it is computed, never what is computed.

**Writes.**  Enroll takes a per-gallery single-writer lock (owned by the
control plane) and resolves the owning worker *inside* that lock:
concurrent enrolls against one gallery serialize, and an enroll racing a
fleet resize routes against the committed ring — the write lands exactly
once, on the owner the commit chose.  A resize holds the same locks as a
*write fence* over the galleries it remaps (from before the warm or
commit until after the commit), so an enroll to a remapping gallery
either completes durably before the new owner loads it or blocks and
re-routes to the new owner — a resident copy can never go silently stale
across the handoff.  Workers persist a successful enroll to the shared
root before acknowledging, so the write survives any later crash of that
worker.

**Failure handling.**  Every data-channel read is armed with a per-request
deadline (``config.request_deadline_s``), so a worker that *hangs* is
indistinguishable from one that died: the read times out and the worker is
handled as dead.  Deaths are reported to the control plane, which reaps
(SIGKILL-first), sweeps ``/dev/shm``, folds the last-polled stats snapshot
into the carried accumulators, and respawns.  Identify is read-only and is
retried (bounded by ``config.retry_attempts``, jittered exponential
backoff) — each attempt re-routes, so a retry that lands after a resize
commit follows the new ring.  A mid-enroll crash is **never** blindly
retried (the write may have persisted) and surfaces as an error response;
an enroll whose worker *drained out of the fleet before the frame was
sent* surfaces a distinct typed error that is safe to resend.  Per-worker
circuit breakers (kept in the fleet's
:class:`~repro.service.resilience.BreakerRegistry`) degrade an arc past
``config.breaker_threshold`` consecutive failures until a health ping
heals it.

Shutdown (:meth:`GalleryRouter.close`) delegates to the control plane,
which drains workers one by one before the channel ends close.
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.exceptions import ValidationError
from repro.service.codec import (
    FrameError,
    encode_enroll_frames,
    encode_identify_frames,
)
from repro.service.config import ServiceConfig
from repro.service.fleet import (
    FleetControlPlane,
    HashRing,
    ResizeInProgress,
    WorkerDied,
    WorkerHandle,
    WorkerHung,
    WorkerRetired,
)
from repro.service.messages import (
    EnrollRequest,
    EnrollResponse,
    IdentifyRequest,
    IdentifyResponse,
    ServiceStats,
)
from repro.service.resilience import CircuitBreaker
from repro.service.worker import recv_message, send_message

PathLike = Union[str, Path]

# Backwards-compatible aliases: these names grew up in this module and are
# pinned by tests and downstream imports.
_WorkerDied = WorkerDied
_WorkerHung = WorkerHung
_WorkerRetired = WorkerRetired


# --------------------------------------------------------------------------- #
# The router
# --------------------------------------------------------------------------- #
class GalleryRouter:
    """Route identify/enroll traffic across a fleet of worker processes.

    Parameters
    ----------
    root:
        Shared gallery root directory (each worker's registry loads lazily
        from it; workers persist writes back into it).
    config:
        Deployment knobs.  ``router_workers`` sets the initial fleet size
        when ``workers`` is not given; ``ring_replicas`` sets the
        virtual-node count; ``warm_on_add`` / ``drain_deadline_s`` steer
        live resizes; everything else (batching, residency, cache, backend)
        is applied per worker.
    workers:
        Explicit initial fleet size override (>= 1).
    control_timeout_s:
        Socket timeout of control-channel operations (ping/stats/warm); a
        worker that cannot answer within it is treated as dead and
        respawned.
    """

    def __init__(
        self,
        root: PathLike,
        config: Optional[ServiceConfig] = None,
        workers: Optional[int] = None,
        control_timeout_s: float = 30.0,
    ):
        self.config = config if config is not None else ServiceConfig()
        count = int(workers if workers is not None else self.config.router_workers)
        if count < 1:
            raise ValidationError(
                f"GalleryRouter needs at least one worker, got {count} "
                "(set router_workers >= 1 or pass workers=)"
            )
        #: The control plane: membership, lifecycle, breakers, accounting.
        self.fleet = FleetControlPlane(
            root, self.config, workers=count, control_timeout_s=control_timeout_s
        )
        self.root = self.fleet.root
        self.control_timeout_s = self.fleet.control_timeout_s
        #: Deadline / retry / breaker knobs from the config, in one bundle.
        self.policy = self.fleet.policy
        #: Name-only registry view over the shared root (HTTP front end).
        self.registry = self.fleet.registry
        self._max_message_bytes = int(self.config.max_stream_bytes)
        #: Jitter source for retry backoff (timing-only; responses are
        #: deterministic regardless of when a retry lands).
        self._retry_rng = random.Random(0x5EED)
        self._closed = False

    # ------------------------------------------------------------------ #
    # IPC calls
    # ------------------------------------------------------------------ #
    def _data_call(
        self, handle: WorkerHandle, buffers: Sequence[bytes]
    ) -> Dict[str, Any]:
        """One request/reply on the data channel (serialized per worker).

        The read is armed with the per-request deadline
        (``config.request_deadline_s``): a worker that is merely *hung* —
        stuck in a syscall, SIGSTOPped, livelocked — times out and is
        handled exactly like a dead one, so no arc can stall forever.  A
        handle that was drained out of the fleet raises
        :class:`~repro.service.fleet.WorkerRetired` *before* anything is
        sent, so the caller knows the operation never happened.
        """
        body = b"".join(buffers)
        with handle.data_lock:
            if not handle.alive:
                if handle.retired:
                    raise WorkerRetired(
                        f"{handle.name} drained out of the fleet before the "
                        "request was sent"
                    )
                raise WorkerDied("worker is marked dead")
            try:
                handle.data_sock.settimeout(self.policy.request_deadline_s)
                handle.data_sock.sendall(struct.pack("<I", len(body)) + body)
                message = recv_message(handle.data_sock, self._max_message_bytes)
            except socket.timeout as exc:
                raise WorkerHung(
                    f"no reply within the {self.policy.request_deadline_s}s deadline"
                ) from exc
            except (OSError, FrameError) as exc:
                raise WorkerDied(str(exc)) from exc
        if message is None:
            raise WorkerDied("worker closed the data channel")
        return message[0]

    def _control_call(self, handle: WorkerHandle, op: str) -> Dict[str, Any]:
        """One request/reply on the control channel (time-bounded)."""
        with handle.control_lock:
            if not handle.alive:
                raise WorkerDied("worker is marked dead")
            try:
                handle.control_sock.settimeout(self.control_timeout_s)
                send_message(handle.control_sock, {"kind": op, "scans": []})
                message = recv_message(handle.control_sock, self._max_message_bytes)
            except socket.timeout as exc:
                raise WorkerHung(
                    f"no {op} reply within the {self.control_timeout_s}s control timeout"
                ) from exc
            except (OSError, FrameError) as exc:
                raise WorkerDied(str(exc)) from exc
        if message is None:
            raise WorkerDied("worker closed the control channel")
        return message[0]

    @staticmethod
    def _document(reply: Dict[str, Any]) -> Dict[str, Any]:
        """Unwrap a worker reply; op-level failures raise.

        Request-level errors (unknown gallery, bad payload) come back inside
        the response document with ``status="error"`` exactly as a
        single-process service would return them; ``ok=False`` here means
        the *operation* failed (codec violation, unexpected worker bug).
        """
        if not reply.get("ok", False):
            raise ValidationError(f"worker operation failed: {reply.get('error')}")
        document = reply.get("document")
        return document if isinstance(document, dict) else {}

    # ------------------------------------------------------------------ #
    # Serving facade (the surface HttpServiceServer consumes)
    # ------------------------------------------------------------------ #
    def route(self, gallery: str) -> str:
        """The worker name the ring assigns to ``gallery``."""
        return self.fleet.route(gallery)

    def identify(self, request: IdentifyRequest) -> IdentifyResponse:
        """Serve one identify on the owning worker (bounded retry on failure).

        Identify is read-only, so a crash or timeout mid-request is safe to
        retry: the dead (or hung → killed) worker is respawned — lazily
        reloading its shard from disk — and the request is re-sent, up to
        ``config.retry_attempts`` extra attempts spaced by jittered
        exponential backoff.  Every attempt re-routes through the ring, so
        a retry racing a fleet resize lands on the committed owner.  If the
        arc's breaker is open (too many consecutive failures), the request
        fails fast instead of burning a deadline against a worker that
        keeps dying.
        """
        self._check_open()
        buffers = encode_identify_frames(request)
        last_error = "no live worker"
        attempts = 1 + self.policy.retry.attempts
        for attempt in range(attempts):
            worker = self.fleet.route(request.gallery)
            breaker = self.fleet.breaker(worker)
            if breaker.tripped:
                return self._degraded_identify(request, worker, breaker)
            try:
                handle = self.fleet.handle_for(worker)
                reply = self._data_call(handle, buffers)
            except WorkerRetired as exc:
                # The member drained away before the frame was sent: nothing
                # failed, nothing to break — re-route immediately.
                last_error = str(exc)
                continue
            except WorkerDied as exc:
                last_error = str(exc)
                breaker.record_failure(last_error)
                self.fleet.on_worker_death(
                    handle, hung=isinstance(exc, WorkerHung), reason=last_error
                )
                if attempt + 1 < attempts:
                    delay = self.policy.retry.backoff_s(attempt, self._retry_rng)
                    if delay > 0:
                        time.sleep(delay)
                continue
            breaker.record_success()
            return IdentifyResponse.from_dict(self._document(reply))
        return IdentifyResponse(
            request_id=request.request_id,
            gallery=request.gallery,
            status="error",
            metadata=dict(request.metadata),
            error=f"WorkerCrashed: {last_error}",
        )

    def _degraded_identify(
        self, request: IdentifyRequest, worker: str, breaker: CircuitBreaker
    ) -> IdentifyResponse:
        """Fast-fail against an arc whose breaker is open."""
        snap = breaker.snapshot()
        return IdentifyResponse(
            request_id=request.request_id,
            gallery=request.gallery,
            status="error",
            metadata=dict(request.metadata),
            error=(
                f"WorkerDegraded: {worker} breaker open after "
                f"{snap['consecutive_failures']} consecutive failures "
                f"(last: {snap['last_error']}); a successful health ping heals it"
            ),
        )

    async def identify_async(self, request: IdentifyRequest) -> IdentifyResponse:
        """Async facade: run the routed identify off the event loop.

        Concurrent HTTP requests targeting different workers proceed in
        parallel (the blocking socket I/O releases the GIL); requests to the
        same worker serialize on its data channel.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.identify, request)

    def identify_many(
        self, requests: Sequence[IdentifyRequest]
    ) -> List[IdentifyResponse]:
        """Serve many identifies concurrently across the fleet (input order)."""
        requests = list(requests)
        if not requests:
            return []
        if len(requests) == 1:
            return [self.identify(requests[0])]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(len(requests), max(2, len(self.fleet.members)))
        ) as pool:
            return list(pool.map(self.identify, requests))

    def enroll(self, request: EnrollRequest) -> EnrollResponse:
        """Enroll on the owning worker under the gallery's single-writer lock.

        Concurrent enrolls against one gallery serialize here (the worker's
        serve lock makes them safe; the router lock makes them *ordered*).
        The owner is resolved **inside** the writer lock: an enroll racing a
        fleet resize routes against the committed ring, so the write lands
        exactly once on the owner the commit chose.  A crash mid-enroll is
        never retried — the worker persists before acknowledging, so the
        write may already be on disk and a blind resend could enroll the
        scans twice.  A worker that *drained out of the fleet* before the
        frame was sent surfaces a distinct typed error instead: no write
        occurred, so resending (now routed to the new owner) is safe.
        """
        self._check_open()
        buffers = encode_enroll_frames(request)
        with self._writer_lock(request.gallery):
            worker = self.fleet.route(request.gallery)
            breaker = self.fleet.breaker(worker)
            if breaker.tripped:
                snap = breaker.snapshot()
                return EnrollResponse(
                    request_id=request.request_id,
                    gallery=request.gallery,
                    status="error",
                    error=(
                        f"WorkerDegraded: {worker} breaker open after "
                        f"{snap['consecutive_failures']} consecutive failures "
                        f"(last: {snap['last_error']}); enroll was not attempted"
                    ),
                )
            try:
                handle = self.fleet.handle_for(worker)
                reply = self._data_call(handle, buffers)
            except WorkerRetired as exc:
                return EnrollResponse(
                    request_id=request.request_id,
                    gallery=request.gallery,
                    status="error",
                    error=(
                        f"WorkerRetired: {exc}; no write occurred — resending "
                        "is safe and will route to the new owner"
                    ),
                )
            except WorkerDied as exc:
                hung = isinstance(exc, WorkerHung)
                breaker.record_failure(str(exc))
                self.fleet.on_worker_death(handle, hung=hung, reason=str(exc))
                verb = "timed out" if hung else "died"
                return EnrollResponse(
                    request_id=request.request_id,
                    gallery=request.gallery,
                    status="error",
                    error=(
                        f"WorkerCrashed: worker {verb} mid-enroll ({exc}); not "
                        "retried — check the gallery state before resending"
                    ),
                )
            breaker.record_success()
        return EnrollResponse.from_dict(self._document(reply))

    def _writer_lock(self, gallery: str) -> threading.Lock:
        # The registry lives in the control plane so a resize can use the
        # same locks as a write fence over the galleries it remaps.
        return self.fleet.writer_lock(gallery)

    # ------------------------------------------------------------------ #
    # Live membership (delegated to the control plane)
    # ------------------------------------------------------------------ #
    def add_worker(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Grow the fleet by one worker (spawn → warm → commit)."""
        self._check_open()
        return self.fleet.add_worker(name)

    def remove_worker(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Shrink the fleet by one worker (commit → drain → reap → retire)."""
        self._check_open()
        return self.fleet.remove_worker(name)

    # ------------------------------------------------------------------ #
    # Health / stats
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, Any]:
        """Ping every worker; respawn the dead; heal breakers; report detail.

        ``status`` is ``"ok"`` when every worker answered (including ones
        that had to be respawned first — their entry carries
        ``respawned: true``) and ``"degraded"`` if any worker could not be
        brought back.  Each entry carries the arc's failure detail —
        breaker state, consecutive-failure count, last error — as of before
        the probe for arcs that answered (a successful ping is also what
        **heals** an open breaker, ``healed: true``), and as of after the
        failed probe for arcs that did not, so a degraded 503 always says
        what went wrong.
        """
        self._check_open()
        workers: Dict[str, Any] = {}
        for name in self.fleet.members:
            breaker = self.fleet.breaker(name)
            # Snapshot before probing: this is the state that degraded the
            # arc, which the probe below may immediately heal.
            detail = breaker.snapshot()
            respawns_before = self.fleet.respawns
            document = None
            for _attempt in range(2):
                try:
                    handle = self.fleet.handle_for(name)
                    document = self._document(self._control_call(handle, "ping"))
                    break
                except WorkerRetired:
                    break  # removed mid-healthz: drop it from the report
                except WorkerDied as exc:
                    breaker.record_failure(str(exc))
                    self.fleet.on_worker_death(
                        handle, hung=isinstance(exc, WorkerHung), reason=str(exc)
                    )
            if name not in set(self.fleet.members):
                continue
            if document is not None:
                breaker.record_success()
            else:
                # The probe itself discovered the failure: report the
                # post-probe detail instead, or a degraded entry could not
                # say what killed the arc (``healed`` stays False either
                # way — nothing answered).
                detail = breaker.snapshot()
            workers[name] = {
                "alive": document is not None,
                "respawned": self.fleet.respawns > respawns_before,
                "pid": None if document is None else document.get("pid"),
                "resident": [] if document is None else list(document.get("resident", [])),
                "breaker": detail["state"],
                "consecutive_failures": detail["consecutive_failures"],
                "total_failures": detail["total_failures"],
                "last_error": detail["last_error"],
                "healed": detail["state"] == "open" and document is not None,
            }
        status = "ok" if all(entry["alive"] for entry in workers.values()) else "degraded"
        return {"status": status, "galleries": self.registry.names(), "workers": workers}

    def stats(self) -> ServiceStats:
        """Aggregate serving counters across the fleet.

        Per-worker snapshots are summed with the carried accumulator of
        every dead (or removed) incarnation; each successful poll refreshes
        the snapshot that would be carried if that worker crashed next, so
        a respawn can neither double-count a worker nor drop
        previously-reported totals — and the ``per_worker`` block lists
        every member even when its poll failed this cycle.
        """
        self._check_open()
        records: Dict[str, Dict[str, Any]] = {}
        for name in self.fleet.members:
            for _attempt in range(2):
                try:
                    handle = self.fleet.handle_for(name)
                    record = self._document(self._control_call(handle, "stats"))
                except WorkerRetired:
                    break  # removed mid-poll: nothing to record
                except WorkerDied as exc:
                    self.fleet.on_worker_death(
                        handle, hung=isinstance(exc, WorkerHung), reason=str(exc)
                    )
                    continue
                records[name] = record
                self.fleet.note_stats(name, record)
                break
        return self._merged_stats(records)

    def _merged_stats(self, records: Dict[str, Dict[str, Any]]) -> ServiceStats:
        acc = self.fleet.accumulate(records)
        pruning = {
            name: {
                **entry,
                "pruning_ratio": (
                    1.0 - entry.get("candidates_scanned", 0) / entry["columns_considered"]
                    if entry.get("columns_considered")
                    else 0.0
                ),
            }
            for name, entry in acc["pruning"].items()
        }
        cache_kinds = {}
        for kind, entry in acc["cache_kinds"].items():
            lookups = entry.get("hits", 0) + entry.get("misses", 0)
            cache_kinds[kind] = {
                **entry,
                "hit_rate": (entry.get("hits", 0) / lookups) if lookups else 0.0,
            }
        cache_dir = next(
            (
                record["cache_dir"]
                for record in records.values()
                if record.get("cache_dir") is not None
            ),
            None,
        )
        stats = ServiceStats(
            requests=acc["requests"],
            probes=acc["probes"],
            batches=acc["batches"],
            coalesced_batches=acc["coalesced_batches"],
            max_batch_size=acc["max_batch_size"],
            errors=acc["errors"],
            batchers=acc["batchers"],
            galleries=dict(acc["galleries"]),
            pruning=pruning,
            cache_kinds=cache_kinds,
            cache_dir=cache_dir,
        )
        stats.router = {
            "workers": len(self.fleet.members),
            "alive_workers": self.fleet.alive_count(),
            "ring_size": self.fleet.ring_size,
            "ring_replicas": self.config.ring_replicas,
            "respawns": self.fleet.respawns,
            "worker_timeouts": self.fleet.worker_timeouts,
            "deaths": self.fleet.deaths,
            "breakers": self.fleet.breakers.snapshot(),
            "retired_breakers": self.fleet.breakers.retired_snapshots(),
            "per_worker": self.fleet.per_worker(records),
            "resizes": self.fleet.resizes(),
        }
        return stats

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("the router is closed")

    @property
    def _handles(self) -> Dict[str, WorkerHandle]:
        """The control plane's live handle map (shared, not a copy)."""
        return self.fleet._handles

    @property
    def workers(self) -> List[str]:
        """Sorted worker names on the ring."""
        return self.fleet.members

    @property
    def ring_size(self) -> int:
        """Number of virtual nodes on the ring (``workers * ring_replicas``)."""
        return self.fleet.ring_size

    @property
    def respawns(self) -> int:
        """How many worker incarnations have been replaced after a crash."""
        return self.fleet.respawns

    @property
    def worker_timeouts(self) -> int:
        """How many worker deaths were deadline timeouts (hung, not dead)."""
        return self.fleet.worker_timeouts

    @property
    def deaths(self) -> List[str]:
        """Recent worker-death reasons, oldest first (bounded window)."""
        return self.fleet.deaths

    def breaker(self, worker: str) -> CircuitBreaker:
        """The consecutive-failure breaker guarding ``worker``'s arc."""
        return self.fleet.breaker(worker)

    def close(self) -> None:
        """Drain and stop every worker (idempotent).

        New requests are rejected first; the control plane then drains each
        worker in turn — its in-flight request finishes (the data lock
        serializes), the ``shutdown`` op is acknowledged, and the process
        is joined, which releases that worker's runner pool and
        ``/dev/shm`` segments before the channel ends close.
        """
        self._closed = True
        self.fleet.close()

    def __enter__(self) -> "GalleryRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GalleryRouter(root={str(self.root)!r}, "
            f"workers={self.fleet.members}, closed={self._closed})"
        )


__all__ = ["GalleryRouter", "HashRing", "ResizeInProgress"]
