"""Perplexity calibration and probability matrices for SNE / t-SNE.

SNE converts pairwise distances into conditional probabilities using a
per-point Gaussian kernel whose bandwidth is set so that the induced
distribution has a user-specified perplexity (paper Equations 7-8).  The
binary search over ``sigma_i`` implemented here is the standard van der
Maaten construction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_matrix

_MACHINE_EPS = 1e-12


def squared_euclidean_distances(points: np.ndarray) -> np.ndarray:
    """Dense matrix of squared Euclidean distances between rows of ``points``."""
    x = check_matrix(points, name="points")
    sq_norms = np.sum(x * x, axis=1)
    distances = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def perplexity_of_distribution(probabilities: np.ndarray) -> float:
    """Perplexity ``2**H(P)`` of a discrete distribution (paper Eq. 7)."""
    p = np.asarray(probabilities, dtype=np.float64)
    p = p[p > _MACHINE_EPS]
    if p.size == 0:
        return 0.0
    entropy = -np.sum(p * np.log2(p))
    return float(2.0**entropy)


def _row_probabilities(
    sq_distances_row: np.ndarray, beta: float, index: int
) -> Tuple[np.ndarray, float]:
    """Conditional probabilities and Shannon entropy for one row at precision ``beta``.

    ``beta = 1 / (2 sigma^2)`` is the precision of the Gaussian kernel.
    """
    logits = -sq_distances_row * beta
    logits[index] = -np.inf
    logits -= logits.max()
    weights = np.exp(logits)
    weights[index] = 0.0
    total = weights.sum()
    if total <= _MACHINE_EPS:
        probabilities = np.zeros_like(weights)
        return probabilities, 0.0
    probabilities = weights / total
    positive = probabilities > _MACHINE_EPS
    entropy = -np.sum(probabilities[positive] * np.log2(probabilities[positive]))
    return probabilities, float(entropy)


def conditional_probabilities(
    points: np.ndarray,
    perplexity: float = 30.0,
    tolerance: float = 1e-5,
    max_iterations: int = 64,
) -> np.ndarray:
    """Matrix of conditional probabilities ``p_{j|i}`` at the target perplexity.

    A per-point binary search finds the Gaussian precision whose induced
    distribution has (log-)perplexity within ``tolerance`` of the target.

    Parameters
    ----------
    points:
        ``(n_samples, n_features)`` data matrix.
    perplexity:
        Target perplexity; must be smaller than the number of points.
    tolerance:
        Acceptable absolute error in Shannon entropy (base-2).
    max_iterations:
        Maximum binary-search iterations per point.
    """
    x = check_matrix(points, name="points", min_rows=3)
    n_samples = x.shape[0]
    if not 1.0 <= perplexity < n_samples:
        raise ValidationError(
            f"perplexity must be in [1, n_samples); got {perplexity} for "
            f"{n_samples} samples"
        )
    sq_distances = squared_euclidean_distances(x)
    target_entropy = np.log2(perplexity)
    conditional = np.zeros((n_samples, n_samples))

    for i in range(n_samples):
        beta, beta_min, beta_max = 1.0, -np.inf, np.inf
        row = sq_distances[i]
        probabilities, entropy = _row_probabilities(row, beta, i)
        iteration = 0
        while abs(entropy - target_entropy) > tolerance and iteration < max_iterations:
            if entropy > target_entropy:
                beta_min = beta
                beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = beta / 2.0 if beta_min == -np.inf else (beta + beta_min) / 2.0
            probabilities, entropy = _row_probabilities(row, beta, i)
            iteration += 1
        conditional[i] = probabilities
    return conditional


def joint_probabilities(
    points: np.ndarray,
    perplexity: float = 30.0,
    tolerance: float = 1e-5,
) -> np.ndarray:
    """Symmetrized joint probabilities ``p_ij = (p_{j|i} + p_{i|j}) / (2n)``.

    The symmetrization guarantees every point contributes at least ``1/(2n)``
    of probability mass, which is the outlier-robustness argument in the
    paper's t-SNE section.
    """
    conditional = conditional_probabilities(points, perplexity=perplexity, tolerance=tolerance)
    n_samples = conditional.shape[0]
    joint = (conditional + conditional.T) / (2.0 * n_samples)
    return np.maximum(joint, _MACHINE_EPS)


def low_dimensional_affinities(embedding: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Student-t joint probabilities ``q_ij`` of an embedding (paper Eq. 11).

    Returns
    -------
    (q, numerator):
        ``q`` is the normalized affinity matrix, ``numerator`` the
        un-normalized ``(1 + ||y_i - y_j||^2)^{-1}`` kernel needed by the
        gradient (paper Eq. 12).
    """
    sq_distances = squared_euclidean_distances(embedding)
    numerator = 1.0 / (1.0 + sq_distances)
    np.fill_diagonal(numerator, 0.0)
    total = numerator.sum()
    if total <= _MACHINE_EPS:
        q = np.full_like(numerator, _MACHINE_EPS)
    else:
        q = numerator / total
    return np.maximum(q, _MACHINE_EPS), numerator


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback-Leibler divergence ``KL(P || Q)`` between affinity matrices."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValidationError("P and Q must have the same shape")
    mask = p > _MACHINE_EPS
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))
