"""Benchmark: Figure 1 — pairwise similarity of resting-state connectomes."""

from conftest import report, run_once

from repro.experiments import figure1_rest_similarity
from repro.reporting.figures import ascii_heatmap


def test_figure1_rest_similarity(benchmark, hcp_config, output_dir):
    record = run_once(benchmark, figure1_rest_similarity, hcp_config)
    report(record, output_dir)
    print(ascii_heatmap(record.arrays["similarity"], max_size=30, title="REST similarity"))
    assert record.shape_holds()
