"""Linear support-vector regression with the epsilon-insensitive loss.

The paper uses SVM regression on leverage-selected connectome features to
predict task performance (Section 3.3.3, Table 1).  This implementation
solves the primal problem

    min_w  (1/2)||w||^2 + C * sum_i max(0, |y_i - w.x_i - b| - epsilon)

by full-batch subgradient descent with a decaying step size.  That is robust
and dependency-free; the feature matrices after leverage selection are small
(tens of features by tens of subjects), so the simple solver converges in a
few hundred iterations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array, check_matrix, check_positive_int


class LinearSVR:
    """Epsilon-insensitive linear support-vector regression.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = less regularization).
    epsilon:
        Half-width of the insensitive tube around the regression function.
    n_iterations:
        Number of full-batch subgradient steps.
    learning_rate:
        Initial step size; decays as ``1 / (1 + t * decay)``.
    decay:
        Step-size decay rate.
    normalize:
        If true (default), features are standardized internally; the learned
        coefficients are folded back to the original scale after fitting.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.01,
        n_iterations: int = 2000,
        learning_rate: float = 0.05,
        decay: float = 0.005,
        normalize: bool = True,
    ):
        if C <= 0:
            raise ValidationError(f"C must be positive, got {C}")
        if epsilon < 0:
            raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.n_iterations = check_positive_int(n_iterations, name="n_iterations")
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self.normalize = bool(normalize)

        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.loss_history_: list = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearSVR":
        """Fit the regressor on ``(n_samples, n_features)`` data."""
        x = check_matrix(features, name="features")
        y = check_array(targets, name="targets", ndim=1)
        if x.shape[0] != y.shape[0]:
            raise ValidationError("features and targets must have the same sample count")

        if self.normalize:
            self._x_mean = x.mean(axis=0)
            x_std = x.std(axis=0)
            self._x_std = np.where(x_std < 1e-12, 1.0, x_std)
            x_work = (x - self._x_mean) / self._x_std
        else:
            self._x_mean = np.zeros(x.shape[1])
            self._x_std = np.ones(x.shape[1])
            x_work = x

        y_mean = float(y.mean())
        y_work = y - y_mean

        n_samples, n_features = x_work.shape
        weights = np.zeros(n_features)
        bias = 0.0
        self.loss_history_ = []

        for iteration in range(self.n_iterations):
            residuals = x_work @ weights + bias - y_work
            outside = np.abs(residuals) > self.epsilon
            signs = np.sign(residuals) * outside

            grad_w = weights + self.C * (x_work.T @ signs) / n_samples
            grad_b = self.C * float(signs.mean())

            step = self.learning_rate / (1.0 + iteration * self.decay)
            weights -= step * grad_w
            bias -= step * grad_b

            if iteration % 100 == 0 or iteration == self.n_iterations - 1:
                hinge = np.maximum(np.abs(residuals) - self.epsilon, 0.0)
                loss = 0.5 * float(weights @ weights) + self.C * float(hinge.mean())
                self.loss_history_.append(loss)

        # Fold the internal standardization back into the coefficients so that
        # predict() works directly on raw features.
        self.coef_ = weights / self._x_std
        self.intercept_ = bias + y_mean - float(self._x_mean @ self.coef_)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for new samples."""
        if self.coef_ is None:
            raise NotFittedError("LinearSVR must be fitted before predicting")
        x = check_matrix(features, name="features")
        if x.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"features has {x.shape[1]} columns, model expects {self.coef_.shape[0]}"
            )
        return x @ self.coef_ + self.intercept_

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """R^2 of the prediction (convenience wrapper)."""
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(targets, dtype=np.float64), self.predict(features))
