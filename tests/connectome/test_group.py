"""Tests for the GroupMatrix container."""

import numpy as np
import pytest

from repro.connectome.connectome import Connectome
from repro.connectome.group import GroupMatrix, build_group_matrix
from repro.exceptions import ValidationError


@pytest.fixture()
def group(rng):
    data = rng.standard_normal((30, 6))
    return GroupMatrix(
        data=data,
        subject_ids=[f"s{i}" for i in range(6)],
        tasks=["REST", "REST", "WM", "WM", "REST", "WM"],
        sessions=["1"] * 6,
    )


class TestGroupMatrix:
    def test_shape_properties(self, group):
        assert group.n_features == 30
        assert group.n_scans == 6

    def test_subject_id_count_validated(self, rng):
        with pytest.raises(ValidationError):
            GroupMatrix(data=rng.standard_normal((5, 3)), subject_ids=["a", "b"])

    def test_task_count_validated(self, rng):
        with pytest.raises(ValidationError):
            GroupMatrix(
                data=rng.standard_normal((5, 3)),
                subject_ids=["a", "b", "c"],
                tasks=["REST"],
            )

    def test_select_columns(self, group):
        subset = group.select_columns([0, 2, 4])
        assert subset.n_scans == 3
        assert subset.subject_ids == ["s0", "s2", "s4"]
        np.testing.assert_allclose(subset.data, group.data[:, [0, 2, 4]])

    def test_select_columns_out_of_range(self, group):
        with pytest.raises(ValidationError):
            group.select_columns([99])

    def test_select_features(self, group):
        subset = group.select_features([1, 3, 5])
        assert subset.n_features == 3
        assert subset.subject_ids == group.subject_ids

    def test_select_features_empty(self, group):
        with pytest.raises(ValidationError):
            group.select_features([])

    def test_subset_by_task(self, group):
        rest = group.subset_by_task("REST")
        assert rest.n_scans == 3
        assert all(t == "REST" for t in rest.tasks)

    def test_subset_missing_task_raises(self, group):
        with pytest.raises(ValidationError):
            group.subset_by_task("MOTOR")

    def test_unique_tasks(self, group):
        assert group.unique_tasks() == ["REST", "WM"]

    def test_column_for_subject(self, group):
        assert group.column_for_subject("s3") == 3
        with pytest.raises(ValidationError):
            group.column_for_subject("missing")


class TestBuildGroupMatrix:
    def test_stacks_connectomes(self, rng):
        connectomes = [
            Connectome.from_timeseries(
                rng.standard_normal((8, 60)), subject_id=f"s{i}", task="REST"
            )
            for i in range(4)
        ]
        group = build_group_matrix(connectomes)
        assert group.n_features == 28
        assert group.n_scans == 4
        np.testing.assert_allclose(group.data[:, 2], connectomes[2].vectorize())

    def test_rejects_mixed_region_counts(self, rng):
        connectomes = [
            Connectome.from_timeseries(rng.standard_normal((8, 60)), subject_id="a"),
            Connectome.from_timeseries(rng.standard_normal((9, 60)), subject_id="b"),
        ]
        with pytest.raises(ValidationError):
            build_group_matrix(connectomes)

    def test_rejects_empty_list(self):
        with pytest.raises(ValidationError):
            build_group_matrix([])
