"""Tests for attack evaluation harnesses and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.attack.evaluation import (
    cross_task_identification_matrix,
    evaluate_identification,
    repeated_identification,
)
from repro.attack.pipeline import AttackPipeline
from repro.exceptions import AttackError, ValidationError


class TestEvaluateIdentification:
    def test_returns_match_result(self, rest_pair):
        result = evaluate_identification(
            rest_pair["reference"], rest_pair["target"], n_features=80
        )
        assert result.similarity.shape == (
            rest_pair["reference"].n_scans,
            rest_pair["target"].n_scans,
        )
        assert result.accuracy() >= 0.8


class TestCrossTaskMatrix:
    def test_shape_and_ordering(self, small_hcp):
        tasks = ["REST", "LANGUAGE", "MOTOR"]
        reference = {t: small_hcp.group_matrix(t, "LR", 1) for t in tasks}
        target = {t: small_hcp.group_matrix(t, "RL", 2) for t in tasks}
        outcome = cross_task_identification_matrix(reference, target, n_features=80)
        assert outcome["accuracy"].shape == (3, 3)
        assert outcome["reference_tasks"] == tasks
        assert np.all((outcome["accuracy"] >= 0) & (outcome["accuracy"] <= 1))

    def test_rest_more_identifying_than_motor(self, small_hcp):
        tasks = ["REST", "MOTOR"]
        reference = {t: small_hcp.group_matrix(t, "LR", 1) for t in tasks}
        target = {t: small_hcp.group_matrix(t, "RL", 2) for t in tasks}
        accuracy = cross_task_identification_matrix(reference, target, n_features=80)["accuracy"]
        assert accuracy[0, 0] > accuracy[1, 1]

    def test_empty_inputs_raise(self):
        with pytest.raises(AttackError):
            cross_task_identification_matrix({}, {})


class TestRepeatedIdentification:
    def test_summary_statistics(self, small_adhd):
        pair = small_adhd.session_pair()
        summary = repeated_identification(
            pair["reference"], pair["target"], n_features=80, n_repetitions=3,
            random_state=0,
        )
        assert 0.0 <= summary["accuracy_mean"] <= 1.0
        assert summary["n_repetitions"] == 3.0
        assert len(summary["accuracies"]) == 3

    def test_mismatched_subjects_raise(self, small_adhd):
        pair = small_adhd.session_pair()
        truncated = pair["target"].select_columns(np.arange(5))
        with pytest.raises(ValidationError):
            repeated_identification(pair["reference"], truncated)

    def test_invalid_train_fraction(self, small_adhd):
        pair = small_adhd.session_pair()
        with pytest.raises(ValidationError):
            repeated_identification(
                pair["reference"], pair["target"], train_fraction=1.5
            )


class TestAttackPipeline:
    def test_run_from_scans(self, small_hcp):
        reference = small_hcp.generate_session("REST", encoding="LR", day=1)
        target = small_hcp.generate_session("REST", encoding="RL", day=2)
        report = AttackPipeline(n_features=80).run(reference, target)
        assert report.accuracy >= 0.8
        assert report.n_reference_scans == small_hcp.n_subjects
        assert report.n_features_used == 80

    def test_run_on_groups(self, rest_pair):
        report = AttackPipeline(n_features=60).run_on_groups(
            rest_pair["reference"], rest_pair["target"]
        )
        assert 0.0 <= report.accuracy <= 1.0
        assert "diagonal_mean" in report.similarity_contrast

    def test_summary_lines(self, rest_pair):
        report = AttackPipeline(n_features=60).run_on_groups(
            rest_pair["reference"], rest_pair["target"]
        )
        text = str(report)
        assert "identification accuracy" in text
        assert "%" in text

    def test_n_features_capped_at_available(self, rest_pair):
        pipeline = AttackPipeline(n_features=10**7)
        report = pipeline.run_on_groups(rest_pair["reference"], rest_pair["target"])
        assert report.n_features_used == rest_pair["reference"].n_features

    def test_signature_requires_prior_run(self):
        with pytest.raises(AttackError):
            AttackPipeline().signature_region_pairs(10)

    def test_signature_after_run(self, rest_pair, small_hcp):
        pipeline = AttackPipeline(n_features=50)
        pipeline.run_on_groups(rest_pair["reference"], rest_pair["target"])
        pairs = pipeline.signature_region_pairs(small_hcp.n_regions, top=10)
        assert len(pairs) == 10

    def test_empty_scan_list_raises(self):
        with pytest.raises(AttackError):
            AttackPipeline().run([], [])
