"""Learning substrate: regression, classification, metrics, model selection.

Implements the learners the paper uses on top of the extracted signatures:
support-vector regression for task-performance prediction (Table 1), a
nearest-neighbour classifier for t-SNE task labelling (Figure 6), and kernel
ridge regression as an internal baseline.  No external ML library is used.
"""

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    nrmse_percent,
    r2_score,
)
from repro.ml.model_selection import KFold, repeated_train_test_splits, train_test_split
from repro.ml.knn import KNeighborsClassifier
from repro.ml.ridge import KernelRidge, RidgeRegression
from repro.ml.svr import LinearSVR

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "mean_absolute_error",
    "mean_squared_error",
    "nrmse_percent",
    "r2_score",
    "KFold",
    "train_test_split",
    "repeated_train_test_splits",
    "KNeighborsClassifier",
    "RidgeRegression",
    "KernelRidge",
    "LinearSVR",
]
