"""Lightweight logging configuration for library and experiment code.

The library never configures the root logger; experiment scripts call
:func:`configure_logging` explicitly so that importing :mod:`repro` has no
side effects.
"""

from __future__ import annotations

import logging
from typing import Optional

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a child logger of the library's namespace logger."""
    if name is None:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a console handler with a compact format to the library logger."""
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
