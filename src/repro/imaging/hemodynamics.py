"""Haemodynamic response modelling.

BOLD fMRI measures neuronal activity only indirectly, through the slow
haemodynamic response of blood oxygenation (paper Section 1).  The dataset
generators convolve neural activity time courses with the canonical
double-gamma haemodynamic response function (HRF) so that the synthetic BOLD
signals carry the low-frequency structure the paper's band-pass filter
(0.008-0.1 Hz) is designed around.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import gammaln

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int


def _gamma_pdf(times: np.ndarray, shape: float, scale: float) -> np.ndarray:
    """Gamma probability density evaluated at ``times`` (vectorized, log-space)."""
    times = np.maximum(times, 1e-12)
    log_pdf = (
        (shape - 1.0) * np.log(times)
        - times / scale
        - gammaln(shape)
        - shape * np.log(scale)
    )
    return np.exp(log_pdf)


def canonical_hrf(
    tr: float = 0.72,
    duration: float = 32.0,
    peak_delay: float = 6.0,
    undershoot_delay: float = 16.0,
    peak_dispersion: float = 1.0,
    undershoot_dispersion: float = 1.0,
    undershoot_ratio: float = 1.0 / 6.0,
) -> np.ndarray:
    """Canonical double-gamma haemodynamic response function sampled at ``tr``.

    The positive lobe peaks around ``peak_delay`` seconds after the stimulus
    and the negative undershoot around ``undershoot_delay`` seconds, matching
    the standard SPM parameterization.
    """
    if tr <= 0:
        raise ValidationError(f"tr must be positive, got {tr}")
    if duration <= tr:
        raise ValidationError(f"duration must exceed tr, got {duration} <= {tr}")
    times = np.arange(0.0, duration, tr)
    peak = _gamma_pdf(times, peak_delay / peak_dispersion, peak_dispersion)
    undershoot = _gamma_pdf(
        times, undershoot_delay / undershoot_dispersion, undershoot_dispersion
    )
    hrf = peak - undershoot_ratio * undershoot
    max_abs = np.max(np.abs(hrf))
    if max_abs < 1e-15:
        raise ValidationError("degenerate HRF: all samples are zero")
    return hrf / max_abs


def block_design_regressor(
    n_timepoints: int,
    tr: float,
    block_duration: float = 20.0,
    rest_duration: float = 20.0,
    onset: float = 0.0,
) -> np.ndarray:
    """Boxcar stimulus regressor for a block-design task.

    The HCP task scans alternate stimulus blocks with rest/fixation blocks;
    this helper generates the corresponding 0/1 boxcar at the scan's TR.
    """
    n_timepoints = check_positive_int(n_timepoints, name="n_timepoints")
    if tr <= 0:
        raise ValidationError(f"tr must be positive, got {tr}")
    if block_duration <= 0 or rest_duration < 0:
        raise ValidationError("block_duration must be positive and rest_duration non-negative")
    times = np.arange(n_timepoints) * tr
    cycle = block_duration + rest_duration
    phase = np.mod(times - onset, cycle) if cycle > 0 else np.zeros_like(times)
    regressor = ((times >= onset) & (phase < block_duration)).astype(np.float64)
    return regressor


def convolve_hrf(neural_signal: np.ndarray, tr: float, **hrf_kwargs) -> np.ndarray:
    """Convolve neural activity with the canonical HRF (same length as input).

    Accepts a 1-D signal or a ``(n_signals, n_timepoints)`` matrix and applies
    the convolution along the last axis.
    """
    signal = np.asarray(neural_signal, dtype=np.float64)
    if signal.ndim not in (1, 2):
        raise ValidationError(
            f"neural_signal must be 1-D or 2-D, got {signal.ndim} dimensions"
        )
    hrf = canonical_hrf(tr=tr, **hrf_kwargs)
    if signal.ndim == 1:
        return np.convolve(signal, hrf)[: signal.shape[0]]
    convolved = np.empty_like(signal)
    for row in range(signal.shape[0]):
        convolved[row] = np.convolve(signal[row], hrf)[: signal.shape[1]]
    return convolved


def task_timing(
    n_timepoints: int, tr: float, block_duration: float, rest_duration: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (stimulus regressor, HRF-convolved regressor) for a block design."""
    boxcar = block_design_regressor(
        n_timepoints, tr, block_duration=block_duration, rest_duration=rest_duration
    )
    return boxcar, convolve_hrf(boxcar, tr=tr)
