"""Tests for multi-site noise simulation and the shared dataset base classes."""

import numpy as np
import pytest

from repro.datasets.base import CohortDataset, ScanRecord
from repro.datasets.multisite import add_multisite_noise, simulate_multisite_session
from repro.exceptions import DatasetError


class TestScanRecord:
    def test_properties(self, rng):
        scan = ScanRecord(
            subject_id="s1", task="REST", session="S1", timeseries=rng.standard_normal((6, 40))
        )
        assert scan.n_regions == 6
        assert scan.n_timepoints == 40

    def test_to_connectome(self, rng):
        scan = ScanRecord(
            subject_id="s1", task="WM", session="S1", timeseries=rng.standard_normal((6, 40))
        )
        connectome = scan.to_connectome()
        assert connectome.n_regions == 6
        assert connectome.task == "WM"

    def test_group_matrix_from_scans(self, rng):
        scans = [
            ScanRecord(
                subject_id=f"s{i}", task="REST", session="S1",
                timeseries=rng.standard_normal((5, 30)),
            )
            for i in range(3)
        ]
        group = CohortDataset.scans_to_group_matrix(scans)
        assert group.n_scans == 3
        assert group.n_features == 10

    def test_group_matrix_from_empty_raises(self):
        with pytest.raises(DatasetError):
            CohortDataset.scans_to_group_matrix([])

    def test_performance_vector(self, rng):
        scans = [
            ScanRecord(
                subject_id=f"s{i}", task="WM", session="S1",
                timeseries=rng.standard_normal((4, 30)), performance=50.0 + i,
            )
            for i in range(3)
        ]
        np.testing.assert_allclose(
            CohortDataset.performance_vector(scans), [50.0, 51.0, 52.0]
        )

    def test_performance_vector_missing_metric_raises(self, rng):
        scans = [
            ScanRecord(
                subject_id="s0", task="REST", session="S1",
                timeseries=rng.standard_normal((4, 30)),
            )
        ]
        with pytest.raises(DatasetError):
            CohortDataset.performance_vector(scans)


class TestMultisiteNoise:
    def test_zero_noise_is_identity(self, rng):
        ts = rng.standard_normal((5, 60))
        np.testing.assert_allclose(add_multisite_noise(ts, 0.0), ts)

    def test_noise_variance_matches_request(self, rng):
        ts = rng.standard_normal((4, 5000)) * 3.0
        noisy = add_multisite_noise(ts, 0.25, random_state=0, structure="white")
        added = noisy - ts
        ratio = added.var(axis=1) / ts.var(axis=1)
        np.testing.assert_allclose(ratio, 0.25, atol=0.05)

    def test_noise_mean_matches_signal_mean(self, rng):
        ts = rng.standard_normal((3, 5000)) + 7.0
        noisy = add_multisite_noise(ts, 0.2, random_state=1, structure="white")
        added = noisy - ts
        np.testing.assert_allclose(added.mean(axis=1), ts.mean(axis=1), atol=0.2)

    def test_structured_noise_variance_matches_request(self, rng):
        ts = rng.standard_normal((4, 3000))
        noisy = add_multisite_noise(ts, 0.3, random_state=2, structure="structured")
        added = noisy - ts
        ratio = added.var(axis=1) / ts.var(axis=1)
        np.testing.assert_allclose(ratio, 0.3, atol=0.12)

    def test_structured_noise_is_spatially_correlated(self, rng):
        ts = rng.standard_normal((6, 2000))
        noisy = add_multisite_noise(ts, 0.3, random_state=3, structure="structured")
        added = noisy - ts
        added = added - added.mean(axis=1, keepdims=True)
        corr = np.corrcoef(added)
        off_diagonal = np.abs(corr[~np.eye(6, dtype=bool)])
        assert off_diagonal.mean() > 0.3

    def test_negative_fraction_rejected(self, rng):
        with pytest.raises(DatasetError):
            add_multisite_noise(rng.standard_normal((3, 20)), -0.1)

    def test_unknown_structure_rejected(self, rng):
        with pytest.raises(DatasetError):
            add_multisite_noise(rng.standard_normal((3, 20)), 0.1, structure="pink")


class TestSimulateMultisiteSession:
    def test_preserves_metadata(self, small_hcp):
        scans = small_hcp.generate_session("REST")[:3]
        noisy = simulate_multisite_session(scans, 0.2, random_state=0)
        assert [s.subject_id for s in noisy] == [s.subject_id for s in scans]
        assert all(s.site == "site-B" for s in noisy)
        assert all(s.session.endswith("_multisite") for s in noisy)

    def test_changes_timeseries(self, small_hcp):
        scans = small_hcp.generate_session("REST")[:2]
        noisy = simulate_multisite_session(scans, 0.2, random_state=0)
        assert not np.allclose(noisy[0].timeseries, scans[0].timeseries)

    def test_empty_session_rejected(self):
        with pytest.raises(DatasetError):
            simulate_multisite_session([], 0.1)
