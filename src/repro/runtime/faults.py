"""Deterministic, seeded fault-injection plane for the serving stack.

Every failure behavior the serving layers promise — identify retried once on
a worker crash, hung workers reaped on a deadline, mid-enroll crashes never
blindly retried, disk-cache errors degrading to recomputes — needs a way to
*manufacture* the failure on demand, deterministically, in-process and in
forked workers alike.  :class:`FaultPlan` is that switchboard: a list of
:class:`FaultRule` entries, each naming one injection **site** (a failure
the stack knows how to produce) and a schedule of when it fires.

**Sites.**  Each hook in the stack asks ``plan.should_fire(site)`` exactly
once per opportunity; a site's invocation counter therefore counts real
events (worker replies, disk reads, HTTP requests), and a rule's schedule is
expressed in those events:

========================  ====================================================
``worker.crash``          worker process dies (``os._exit``) instead of
                          replying — no cleanup, like a SIGKILL
``worker.hang``           worker sleeps ``delay_s`` before replying (stuck,
                          not dead — only a deadline can tell the difference)
``worker.slow_reply``     worker delays its reply by ``delay_s``
``ipc.truncate_frame``    worker sends a reply frame cut mid-buffer, short of
                          its declared length
``ipc.corrupt_frame``     worker sends a length-aligned reply with corrupted
                          frame bytes
``cache.read_error``      artifact-cache disk-tier read raises ``OSError``
``cache.write_error``     artifact-cache disk-tier write raises ``OSError``
``http.drop_connection``  HTTP server aborts the TCP connection instead of
                          answering
========================  ====================================================

**Determinism.**  A rule fires at invocation indices ``start``,
``start + every``, ``start + 2*every``, … up to ``limit`` firings, optionally
gated by a Bernoulli draw from a :class:`random.Random` seeded from
``(plan seed, rule index, site)`` — so two plans built from the same spec
fire at exactly the same events.  Plans are plain-data and JSON-round-trip
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`), which is how a
plan rides on :class:`~repro.service.config.ServiceConfig` through the fork
into router workers.

**Activation.**  Constructing an
:class:`~repro.service.service.IdentificationService` whose config carries a
``fault_plan`` installs the plan process-wide (:func:`install_plan`), so
hooks in layers that never see the config — the artifact cache's disk tier —
find it via :func:`active_plan` / :func:`maybe_fire`.  Without an installed
plan every hook is a dictionary lookup returning ``None``.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

#: Every injection site a hook in the stack implements.  ``should_fire``
#: rejects unknown sites so a typo in a plan fails loudly, not silently.
FAULT_SITES: Tuple[str, ...] = (
    "worker.crash",
    "worker.hang",
    "worker.slow_reply",
    "ipc.truncate_frame",
    "ipc.corrupt_frame",
    "cache.read_error",
    "cache.write_error",
    "http.drop_connection",
)


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: a site plus when (and how often) it fires.

    Parameters
    ----------
    site:
        Injection point, one of :data:`FAULT_SITES`.
    start:
        First eligible invocation index of the site (0-based).
    every:
        Fire on every ``every``-th eligible invocation from ``start`` on.
    limit:
        Most firings of this rule (``None`` = unbounded).
    probability:
        Bernoulli gate on each otherwise-eligible invocation, drawn from the
        rule's seeded RNG (1.0 = deterministic firing).
    delay_s:
        Sleep duration for ``worker.hang`` / ``worker.slow_reply``; a hang
        of 0.0 defaults to effectively-forever (an hour).
    """

    site: str
    start: int = 0
    every: int = 1
    limit: Optional[int] = 1
    probability: float = 1.0
    delay_s: float = 0.0

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: {list(FAULT_SITES)}"
            )
        if int(self.start) < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if int(self.every) < 1:
            raise ConfigurationError(f"every must be >= 1, got {self.every}")
        if self.limit is not None and int(self.limit) < 1:
            raise ConfigurationError(
                f"limit must be >= 1 or None, got {self.limit}"
            )
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if float(self.delay_s) < 0:
            raise ConfigurationError(f"delay_s must be >= 0, got {self.delay_s}")


class FaultPlan:
    """A deterministic schedule of injected faults (thread-safe).

    Parameters
    ----------
    rules:
        :class:`FaultRule` instances or their dict specs.
    seed:
        Seeds each rule's Bernoulli RNG; irrelevant while every rule keeps
        ``probability=1.0``.
    """

    def __init__(
        self,
        rules: Sequence[Union[FaultRule, Dict[str, Any]]] = (),
        seed: int = 0,
    ):
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule(**rule)
            for rule in rules
        )
        self._lock = threading.Lock()
        self._invocations: Dict[str, int] = {}
        self._fired = [0] * len(self.rules)
        self._rngs = [
            random.Random(f"{self.seed}:{index}:{rule.site}")
            for index, rule in enumerate(self.rules)
        ]

    # ------------------------------------------------------------------ #
    # The hook surface
    # ------------------------------------------------------------------ #
    def should_fire(self, site: str) -> Optional[FaultRule]:
        """Count one invocation of ``site``; the matching rule if one fires.

        Each hook calls this exactly once per real opportunity, so rule
        schedules are phrased in observable events (replies sent, disk reads,
        HTTP requests) and replaying the same workload replays the faults.
        """
        if site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {site!r}; known sites: {list(FAULT_SITES)}"
            )
        with self._lock:
            index = self._invocations.get(site, 0)
            self._invocations[site] = index + 1
            for rule_index, rule in enumerate(self.rules):
                if rule.site != site or index < rule.start:
                    continue
                if (index - rule.start) % rule.every:
                    continue
                if rule.limit is not None and self._fired[rule_index] >= rule.limit:
                    continue
                if (
                    rule.probability < 1.0
                    and self._rngs[rule_index].random() >= rule.probability
                ):
                    continue
                self._fired[rule_index] += 1
                return rule
        return None

    def fired(self) -> Dict[str, int]:
        """Total firings per site (in this process — counters do not cross forks)."""
        with self._lock:
            totals: Dict[str, int] = {}
            for rule, count in zip(self.rules, self._fired):
                totals[rule.site] = totals.get(rule.site, 0) + count
            return totals

    def invocations(self) -> Dict[str, int]:
        """How many opportunities each site has counted so far."""
        with self._lock:
            return dict(self._invocations)

    # ------------------------------------------------------------------ #
    # Serialization (how a plan rides on ServiceConfig into forked workers)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [asdict(rule) for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"a fault plan must be a dict, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"seed", "rules"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan field(s): {sorted(unknown)}"
            )
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ConfigurationError("fault-plan 'rules' must be a list")
        checked = []
        for rule in rules:
            if isinstance(rule, FaultRule):
                checked.append(rule)
                continue
            if not isinstance(rule, dict):
                raise ConfigurationError(
                    f"each fault rule must be a dict, got {type(rule).__name__}"
                )
            unknown = set(rule) - {f.name for f in _RULE_FIELDS}
            if unknown:
                raise ConfigurationError(
                    f"unknown fault-rule field(s): {sorted(unknown)}"
                )
            checked.append(FaultRule(**rule))
        return cls(rules=checked, seed=payload.get("seed", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "FaultPlan":
        return cls.from_dict(json.loads(document))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(rules={len(self.rules)}, seed={self.seed})"


_RULE_FIELDS = tuple(FaultRule.__dataclass_fields__.values())


# --------------------------------------------------------------------------- #
# Payload mutators used by the IPC hooks
# --------------------------------------------------------------------------- #
def truncate_buffer(body: bytes) -> bytes:
    """Cut a frame stream mid-buffer: the first half, short of its length."""
    return bytes(body[: len(body) // 2])


def corrupt_buffer(body: bytes) -> bytes:
    """Flip one byte a third of the way in (length-preserving corruption)."""
    if not body:
        return body
    corrupted = bytearray(body)
    corrupted[len(corrupted) // 3] ^= 0xFF
    return bytes(corrupted)


# --------------------------------------------------------------------------- #
# Process-wide active plan (for hooks that never see a ServiceConfig)
# --------------------------------------------------------------------------- #
_active_plan: Optional[FaultPlan] = None
_active_lock = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or clear, with ``None``) the process-wide fault plan."""
    global _active_plan
    with _active_lock:
        _active_plan = plan
    return plan


def active_plan() -> Optional[FaultPlan]:
    """The process-wide fault plan, or ``None`` when chaos is off."""
    with _active_lock:
        return _active_plan


def maybe_fire(site: str) -> Optional[FaultRule]:
    """``should_fire`` against the installed plan; ``None`` when none is."""
    plan = active_plan()
    return None if plan is None else plan.should_fire(site)


__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "corrupt_buffer",
    "install_plan",
    "maybe_fire",
    "truncate_buffer",
]
