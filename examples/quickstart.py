"""Quickstart: de-anonymize a resting-state cohort in a few lines.

The scenario mirrors the paper's core setting: an attacker holds one
identified dataset (session 1, L-R encoding) and one anonymous dataset
(session 2, R-L encoding) of the same subjects.  The attack selects the
connectome features with the highest leverage scores in the identified
dataset and matches subjects across datasets by Pearson correlation.

Everything flows through the batched runtime (``repro.runtime``): group
matrices are built with one batched GEMM per session and memoized in the
process-wide artifact cache, and whole experiment batches execute through
the :class:`~repro.runtime.ExperimentRunner`.

Run with::

    python examples/quickstart.py
"""

from repro import AttackPipeline, HCPLikeDataset
from repro.runtime import ExperimentRunner, ExperimentSpec, get_default_cache


def main() -> None:
    # A small synthetic HCP-like cohort (see DESIGN.md for why a generative
    # model stands in for the real Human Connectome Project release).
    dataset = HCPLikeDataset(
        n_subjects=30, n_regions=100, n_timepoints=180, random_state=42
    )

    print("Generating the identified (reference) and anonymous (target) sessions...")
    reference_scans = dataset.generate_session("REST", encoding="LR", day=1)
    target_scans = dataset.generate_session("REST", encoding="RL", day=2)

    pipeline = AttackPipeline(n_features=100)
    report = pipeline.run(reference_scans, target_scans)

    print()
    print(report)
    print()
    print("Where does the signature live?  Top region pairs by leverage score:")
    for region_a, region_b in pipeline.signature_region_pairs(dataset.n_regions, top=10):
        print(f"  region {region_a:3d} <-> region {region_b:3d}")

    predicted = report.match_result.predicted_subject_ids
    actual = report.match_result.target_subject_ids
    mismatches = [(a, p) for a, p in zip(actual, predicted) if a != p]
    print()
    if mismatches:
        print("Subjects the attack got wrong:")
        for actual_id, predicted_id in mismatches:
            print(f"  {actual_id} was matched to {predicted_id}")
    else:
        print("Every anonymous subject was re-identified correctly.")

    # Re-running over the same scans is free: the group matrices were
    # memoized by content in the runtime's artifact cache.
    pipeline.run(reference_scans, target_scans)
    stats = get_default_cache().stats("group_matrix")
    print()
    print(
        f"Artifact cache: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.0%}) on group matrices."
    )

    # Batched execution: one spec per workload, deterministic seeds, shared
    # cache, optional thread pool (max_workers>1).
    runner = ExperimentRunner(max_workers=2)
    specs = [
        ExperimentSpec(
            name=f"attack-{task}",
            kind="attack",
            params={"n_subjects": 12, "n_regions": 48, "n_timepoints": 120, "task": task},
        )
        for task in ("REST", "LANGUAGE")
    ]
    print()
    print("Batched runner over REST and LANGUAGE attack specs:")
    for result in runner.run(specs):
        print(
            f"  {result.name:16s} accuracy={result.metrics['accuracy']:.2f} "
            f"total={result.total_seconds:.2f}s"
        )


if __name__ == "__main__":
    main()
