"""Tests for the brain phantom and synthetic atlases."""

import numpy as np
import pytest

from repro.exceptions import AtlasError, ValidationError
from repro.imaging.atlas import (
    Atlas,
    aal2_like_atlas,
    glasser_like_atlas,
    random_parcellation,
)
from repro.imaging.phantom import BrainPhantom


class TestBrainPhantom:
    def test_masks_are_disjoint(self, small_phantom):
        assert not np.any(small_phantom.brain_mask & small_phantom.skull_mask)

    def test_head_mask_is_union(self, small_phantom):
        union = small_phantom.brain_mask | small_phantom.skull_mask
        np.testing.assert_array_equal(small_phantom.head_mask, union)

    def test_brain_is_nonempty_and_smaller_than_grid(self, small_phantom):
        n_voxels = int(np.prod(small_phantom.shape))
        assert 0 < small_phantom.n_brain_voxels < n_voxels

    def test_skull_shell_exists(self, small_phantom):
        assert small_phantom.n_skull_voxels > 0

    def test_brain_coordinates_match_mask(self, small_phantom):
        coords = small_phantom.brain_coordinates()
        assert coords.shape == (small_phantom.n_brain_voxels, 3)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValidationError):
            BrainPhantom(shape=(4, 4, 4))

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValidationError):
            BrainPhantom(brain_fraction=(1.5, 0.5, 0.5))


class TestAtlas:
    def test_region_count(self, small_atlas):
        assert small_atlas.n_regions == 12

    def test_labels_are_contiguous(self, small_atlas):
        present = np.unique(small_atlas.labels)
        present = present[present > 0]
        np.testing.assert_array_equal(present, np.arange(1, 13))

    def test_every_region_nonempty(self, small_atlas):
        assert np.all(small_atlas.region_sizes() > 0)

    def test_region_mask(self, small_atlas):
        mask = small_atlas.region_mask(3)
        assert mask.sum() == small_atlas.region_sizes()[2]

    def test_region_mask_out_of_range(self, small_atlas):
        with pytest.raises(AtlasError):
            small_atlas.region_mask(0)
        with pytest.raises(AtlasError):
            small_atlas.region_mask(13)

    def test_brain_mask_covers_all_labels(self, small_atlas, small_phantom):
        # Every labelled voxel lies inside the phantom's brain compartment.
        assert np.all(small_phantom.brain_mask[small_atlas.brain_mask()])

    def test_default_region_names(self, small_atlas):
        assert len(small_atlas.region_names) == 12

    def test_rejects_non_contiguous_labels(self):
        labels = np.zeros((10, 10, 10), dtype=int)
        labels[1, 1, 1] = 5
        with pytest.raises(AtlasError):
            Atlas(labels=labels)

    def test_rejects_wrong_name_count(self, small_atlas):
        with pytest.raises(AtlasError):
            Atlas(labels=small_atlas.labels, region_names=["only-one"])

    def test_rejects_empty_atlas(self):
        with pytest.raises(AtlasError):
            Atlas(labels=np.zeros((5, 5, 5), dtype=int))


class TestAtlasConstructors:
    def test_random_parcellation_respects_brain_mask(self, small_phantom):
        atlas = random_parcellation(small_phantom, n_regions=8, random_state=0)
        labelled = atlas.labels > 0
        np.testing.assert_array_equal(labelled, small_phantom.brain_mask)

    def test_random_parcellation_deterministic(self, small_phantom):
        a = random_parcellation(small_phantom, n_regions=8, random_state=3)
        b = random_parcellation(small_phantom, n_regions=8, random_state=3)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_too_many_regions_raises(self, small_phantom):
        with pytest.raises(AtlasError):
            random_parcellation(small_phantom, n_regions=10**6)

    def test_glasser_like_is_canonical(self):
        phantom = BrainPhantom(shape=(16, 18, 16))
        a = glasser_like_atlas(phantom, n_regions=30)
        b = glasser_like_atlas(phantom, n_regions=30)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.name == "glasser_like"

    def test_aal2_like_region_count_capped_by_brain_size(self):
        phantom = BrainPhantom(shape=(12, 12, 12))
        atlas = aal2_like_atlas(phantom, n_regions=10**5)
        assert atlas.n_regions <= phantom.n_brain_voxels
