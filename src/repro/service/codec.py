"""Wire codecs of the serving API: JSON (the oracle) and binary frames.

Two request codecs carry scan payloads over HTTP, selected per request by
``Content-Type`` (see ``docs/protocol.md`` for the normative spec):

``application/json`` (the default, and the bit-identity **oracle**)
    Scan time series travel as nested lists of JSON numbers.  ``json.dumps``
    emits the shortest round-tripping repr of every finite double and
    ``json.loads`` parses it back to the same bits, so the rebuilt arrays
    are bit-identical to the originals.  The one exception is NaN: Python's
    lenient JSON spells every NaN as the literal ``NaN``, so NaN payload and
    sign bits are canonicalized (the serving layer rejects non-finite scan
    values anyway).

``application/x-repro-frames`` (the binary frame codec)
    A length-prefixed frame stream: a 4-byte magic (``RPF1``), one JSON
    header frame (envelope + per-scan metadata + shapes), then one raw
    little-endian float64 C-order buffer per scan.  Decoding is
    ``np.frombuffer`` — no per-element parsing, no intermediate text — and
    preserves every float64 bit pattern including NaN payloads.  This is the
    hot-path codec: the vectorized kernels consume the decoded buffers
    directly.

**Equivalence rule (normative):** decoding a scan from either codec yields a
bit-identical ``ScanRecord``, so identify responses do not depend on the
request codec.  The binary codec is validated against the JSON oracle by
``tests/service/test_codec.py`` and ``benchmarks/bench_http_serving.py``.

Error taxonomy: *structural* violations of the frame layout (bad magic,
length/shape mismatches, truncation, trailing bytes) raise
:class:`FrameError` — the HTTP server answers them with a structured ``400``
and closes the connection, because the byte stream can no longer be trusted
to be request-aligned.  *Semantic* violations (unknown kind, missing fields,
non-finite time series) raise plain
:class:`~repro.exceptions.ValidationError` after the body was fully
consumed — those are ordinary keep-alive ``400`` responses.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.base import ScanRecord
from repro.exceptions import ValidationError
from repro.service.messages import EnrollRequest, IdentifyRequest

#: Content type of the JSON request codec (the default and the oracle).
CONTENT_TYPE_JSON = "application/json"

#: Content type selecting the binary frame codec.
CONTENT_TYPE_BINARY = "application/x-repro-frames"

#: First four bytes of every binary frame stream: protocol name + version.
FRAME_MAGIC = b"RPF1"

#: Scan buffers travel as little-endian float64 regardless of host order.
FRAME_DTYPE = "<f8"

#: struct format of every frame-length prefix (unsigned 32-bit little-endian).
_LENGTH_FORMAT = "<I"
_LENGTH_BYTES = 4
_MAX_FRAME_LENGTH = 0xFFFFFFFF


class FrameError(ValidationError):
    """A structural violation of the binary frame layout.

    Raised while parsing the frame *structure* (magic, length prefixes,
    shape/byte-count agreement, truncation, trailing bytes).  The HTTP
    server maps it to a structured ``400`` document and then closes the
    connection: once the declared framing cannot be trusted, keeping the
    connection alive risks parsing payload bytes as the next request line
    (a desync), so the stream is cleanly terminated instead.
    """


# --------------------------------------------------------------------------- #
# JSON scan codec (the oracle)
# --------------------------------------------------------------------------- #
def scan_to_wire(scan: ScanRecord) -> Dict[str, Any]:
    """One scan as a JSON-serializable document.

    The time series goes over the wire as nested lists of Python floats;
    ``json`` emits the shortest round-tripping repr of each double, so the
    array rebuilt by :func:`scan_from_wire` is bit-identical to the
    original — the foundation of the HTTP path's bit-identity contract.
    """
    return {
        "subject_id": scan.subject_id,
        "task": scan.task,
        "session": scan.session,
        "timeseries": np.asarray(scan.timeseries, dtype=np.float64).tolist(),
        "site": scan.site,
        "performance": None if scan.performance is None else float(scan.performance),
        "diagnosis": scan.diagnosis,
    }


def scan_from_wire(payload: Any) -> ScanRecord:
    """Rebuild a :class:`~repro.datasets.base.ScanRecord` from its wire form."""
    if not isinstance(payload, dict):
        raise ValidationError("each scan must be a JSON object")
    missing = [key for key in ("subject_id", "task", "session", "timeseries") if key not in payload]
    if missing:
        raise ValidationError(f"scan payload is missing field(s): {missing}")
    try:
        timeseries = np.asarray(payload["timeseries"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"scan timeseries is not a numeric matrix: {exc}") from None
    performance = payload.get("performance")
    return ScanRecord(
        subject_id=str(payload["subject_id"]),
        task=str(payload["task"]),
        session=str(payload["session"]),
        timeseries=timeseries,
        site=payload.get("site"),
        performance=None if performance is None else float(performance),
        diagnosis=payload.get("diagnosis"),
    )


# --------------------------------------------------------------------------- #
# Binary frame codec: encoding
# --------------------------------------------------------------------------- #
def scan_frame_meta(scan: ScanRecord) -> Dict[str, Any]:
    """The header-frame metadata entry of one scan (everything but the bytes)."""
    return {
        "subject_id": scan.subject_id,
        "task": scan.task,
        "session": scan.session,
        "site": scan.site,
        "performance": None if scan.performance is None else float(scan.performance),
        "diagnosis": scan.diagnosis,
        "shape": [int(scan.timeseries.shape[0]), int(scan.timeseries.shape[1])],
    }


def scan_payload(scan: ScanRecord) -> bytes:
    """The raw frame payload of one scan: little-endian float64, C-order."""
    return np.ascontiguousarray(scan.timeseries, dtype=FRAME_DTYPE).tobytes()


def pack_frame(payload: bytes) -> bytes:
    """One length-prefixed frame: u32-LE byte count, then the payload."""
    if len(payload) > _MAX_FRAME_LENGTH:
        raise ValidationError(
            f"frame payload of {len(payload)} bytes exceeds the u32 length prefix"
        )
    return struct.pack(_LENGTH_FORMAT, len(payload)) + payload


def encode_frames(header: Dict[str, Any], payloads: Sequence[bytes]) -> List[bytes]:
    """Encode a frame stream as a list of buffers (stream-writable in order).

    The first buffer is ``magic + header frame``; each subsequent buffer is
    one scan frame.  Callers that need one contiguous body can
    ``b"".join(...)`` the result; callers that stream (the HTTP client's
    enroll upload) write the buffers one by one and never materialize the
    whole body.
    """
    header_bytes = json.dumps(header).encode("utf-8")
    buffers = [FRAME_MAGIC + pack_frame(header_bytes)]
    buffers.extend(pack_frame(payload) for payload in payloads)
    return buffers


def _request_frames(
    kind: str,
    request: Union[IdentifyRequest, EnrollRequest],
    extra: Dict[str, Any],
) -> List[bytes]:
    if request.scans is None:
        raise ValidationError(
            f"the binary frame codec carries scan payloads only; build the "
            f"{type(request).__name__} with scans= (pre-built probe matrices "
            f"are in-process only)"
        )
    header = {
        "kind": kind,
        "gallery": request.gallery,
        "request_id": request.request_id,
        "metadata": dict(request.metadata),
        "scans": [scan_frame_meta(scan) for scan in request.scans],
        **extra,
    }
    return encode_frames(header, [scan_payload(scan) for scan in request.scans])


def encode_identify_frames(request: IdentifyRequest) -> List[bytes]:
    """The binary-codec HTTP body of an identify request, as stream buffers."""
    return _request_frames("identify", request, {})


def encode_enroll_frames(request: EnrollRequest) -> List[bytes]:
    """The binary-codec HTTP body of an enroll request, as stream buffers."""
    return _request_frames("enroll", request, {"create": bool(request.create)})


# --------------------------------------------------------------------------- #
# Binary frame codec: structural decoding
# --------------------------------------------------------------------------- #
def check_magic(prefix: bytes) -> None:
    """Validate the 4-byte stream magic (name + protocol version)."""
    if prefix != FRAME_MAGIC:
        raise FrameError(
            f"bad frame-stream magic {prefix[:4]!r} (expected {FRAME_MAGIC!r}; "
            "unknown protocol version or not a frame stream)"
        )


def parse_frame_length(prefix: bytes, max_frame_bytes: int, what: str) -> int:
    """Decode one u32-LE length prefix, enforcing the per-frame byte limit."""
    if len(prefix) != _LENGTH_BYTES:
        raise FrameError(f"truncated length prefix of {what}")
    (length,) = struct.unpack(_LENGTH_FORMAT, prefix)
    if length > max_frame_bytes:
        raise FrameError(
            f"{what} declares {length} bytes, over the {max_frame_bytes}-byte "
            "per-frame limit"
        )
    return length


def parse_header(payload: bytes) -> Dict[str, Any]:
    """Decode the header frame into its JSON object."""
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"header frame is not valid UTF-8 JSON: {exc}") from None
    if not isinstance(header, dict):
        raise FrameError("header frame must be a JSON object")
    return header


def expected_scan_frames(header: Dict[str, Any]) -> List[Tuple[Dict[str, Any], int]]:
    """Per-scan ``(meta, expected_byte_count)`` pairs the header declares.

    Structural only: every scan entry must carry a ``shape`` of two
    non-negative integers, which fixes the exact byte count of its frame
    (``rows * cols * 8``).  Semantic scan validation (subject ids, finite
    values, minimum dimensions) happens later, in
    :func:`scan_from_frame`.
    """
    scans = header.get("scans")
    if not isinstance(scans, list):
        raise FrameError("header frame must carry a 'scans' list")
    expected = []
    for index, meta in enumerate(scans):
        if not isinstance(meta, dict):
            raise FrameError(f"scan {index} metadata must be a JSON object")
        shape = meta.get("shape")
        if (
            not isinstance(shape, list)
            or len(shape) != 2
            or not all(isinstance(dim, int) and not isinstance(dim, bool) and dim >= 0
                       for dim in shape)
        ):
            raise FrameError(
                f"scan {index} must declare 'shape' as two non-negative "
                f"integers, got {shape!r}"
            )
        expected.append((meta, shape[0] * shape[1] * 8))
    return expected


def array_from_payload(payload: bytes, shape: Sequence[int]) -> np.ndarray:
    """View one scan frame payload as its ``(rows, cols)`` float64 matrix.

    Zero-copy: the array is a read-only view over the received bytes, with
    every float64 bit pattern preserved exactly as sent.
    """
    return np.frombuffer(payload, dtype=FRAME_DTYPE).reshape(int(shape[0]), int(shape[1]))


def decode_frames(
    body: bytes, max_frame_bytes: Optional[int] = None
) -> Tuple[Dict[str, Any], List[np.ndarray]]:
    """Structurally decode one contiguous frame stream.

    Returns the header object and one array per scan frame.  Raises
    :class:`FrameError` on any structural violation: bad magic, truncated
    or oversized frames, a frame whose length disagrees with its declared
    shape, a frame count that disagrees with the header, or trailing bytes.

    This is the buffered mirror of the HTTP server's incremental reader
    (`repro.service.http`), used by tests, the CLI codec round-trip, and
    anyone holding a complete body.
    """
    if max_frame_bytes is None:
        max_frame_bytes = _MAX_FRAME_LENGTH
    offset = 0
    remaining = len(body)

    def take(count: int, what: str) -> bytes:
        nonlocal offset, remaining
        if count > remaining:
            raise FrameError(
                f"truncated frame stream: {what} needs {count} bytes but only "
                f"{remaining} remain"
            )
        chunk = body[offset:offset + count]
        offset += count
        remaining -= count
        return chunk

    check_magic(take(4, "stream magic"))
    header_length = parse_frame_length(
        take(_LENGTH_BYTES, "header frame"), max_frame_bytes, "header frame"
    )
    header = parse_header(take(header_length, "header frame payload"))
    arrays = []
    for index, (meta, expected_bytes) in enumerate(expected_scan_frames(header)):
        frame_length = parse_frame_length(
            take(_LENGTH_BYTES, f"scan frame {index}"), max_frame_bytes, f"scan frame {index}"
        )
        if frame_length != expected_bytes:
            raise FrameError(
                f"scan frame {index} declares {frame_length} bytes but its "
                f"shape {meta.get('shape')} implies {expected_bytes}"
            )
        arrays.append(array_from_payload(take(frame_length, f"scan frame {index} payload"),
                                         meta["shape"]))
    if remaining:
        raise FrameError(f"{remaining} trailing byte(s) after the last scan frame")
    return header, arrays


# --------------------------------------------------------------------------- #
# Binary frame codec: semantic decoding
# --------------------------------------------------------------------------- #
def scan_from_frame(meta: Dict[str, Any], array: np.ndarray) -> ScanRecord:
    """Build the :class:`ScanRecord` of one decoded frame (semantic layer).

    Raises :class:`~repro.exceptions.ValidationError` — an ordinary 400, the
    connection stays usable — when the metadata or the values are invalid
    (missing identity fields, non-finite time series, degenerate shapes).
    """
    missing = [key for key in ("subject_id", "task", "session") if meta.get(key) is None]
    if missing:
        raise ValidationError(f"scan metadata is missing field(s): {missing}")
    performance = meta.get("performance")
    return ScanRecord(
        subject_id=str(meta["subject_id"]),
        task=str(meta["task"]),
        session=str(meta["session"]),
        timeseries=array,
        site=meta.get("site"),
        performance=None if performance is None else float(performance),
        diagnosis=meta.get("diagnosis"),
    )


def _decoded_scans(header: Dict[str, Any], arrays: Sequence[np.ndarray]) -> List[ScanRecord]:
    metas = header.get("scans") or []
    if not metas:
        raise ValidationError("the frame stream carries no scans (empty 'scans' list)")
    return [scan_from_frame(meta, array) for meta, array in zip(metas, arrays)]


def _check_kind(header: Dict[str, Any], expected: str) -> None:
    kind = header.get("kind")
    if kind != expected:
        raise ValidationError(
            f"frame stream has kind {kind!r}; this endpoint expects {expected!r}"
        )


def identify_request_from_frames(
    header: Dict[str, Any], arrays: Sequence[np.ndarray]
) -> IdentifyRequest:
    """Semantic decode of a structurally valid identify frame stream."""
    _check_kind(header, "identify")
    if "gallery" not in header:
        raise ValidationError("an identify frame header needs a 'gallery' field")
    return IdentifyRequest(
        gallery=header["gallery"],
        scans=_decoded_scans(header, arrays),
        request_id=str(header.get("request_id", "")),
        metadata=dict(header.get("metadata") or {}),
    )


def enroll_request_from_frames(
    header: Dict[str, Any], arrays: Sequence[np.ndarray]
) -> EnrollRequest:
    """Semantic decode of a structurally valid enroll frame stream."""
    _check_kind(header, "enroll")
    if "gallery" not in header:
        raise ValidationError("an enroll frame header needs a 'gallery' field")
    return EnrollRequest(
        gallery=header["gallery"],
        scans=_decoded_scans(header, arrays),
        create=bool(header.get("create", False)),
        request_id=str(header.get("request_id", "")),
        metadata=dict(header.get("metadata") or {}),
    )


__all__ = [
    "CONTENT_TYPE_BINARY",
    "CONTENT_TYPE_JSON",
    "FRAME_DTYPE",
    "FRAME_MAGIC",
    "FrameError",
    "array_from_payload",
    "check_magic",
    "decode_frames",
    "encode_enroll_frames",
    "encode_frames",
    "encode_identify_frames",
    "enroll_request_from_frames",
    "expected_scan_frames",
    "identify_request_from_frames",
    "pack_frame",
    "parse_frame_length",
    "parse_header",
    "scan_frame_meta",
    "scan_from_frame",
    "scan_from_wire",
    "scan_payload",
    "scan_to_wire",
]
