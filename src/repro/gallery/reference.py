"""The persistent reference gallery: fit once, identify many times.

The paper's attack is a one-shot fit-and-identify; a production
identification service is the opposite shape — one fixed (but growing)
reference cohort, many probe batches.  :class:`ReferenceGallery` is that
service's core object:

* **Fit once** — the Principal Features Subspace is fitted on the reference
  group matrix through the content-keyed artifact cache
  (:mod:`repro.gallery.factors`), so the SVD factors (``svd`` kind), leverage
  scores (``leverage`` kind), and the reduced signature matrix (``gallery``
  kind) are computed once and persist through the cache's disk tier.
* **Identify many** — :meth:`identify` builds the probe group matrix through
  the batched runtime (a cache hit for repeated probes) and matches against
  the stored signatures, optionally sharded across an
  :class:`~repro.runtime.runner.ExperimentRunner` pool.
* **Grow** — :meth:`enroll` appends new subjects and re-fits the leverage
  scores only when the content key of the reference actually changed.
* **Persist** — :meth:`save`/:meth:`load` round-trip the fitted state through
  a directory, so a service restart costs a file read, not an SVD.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.attack.matching import MatchResult
from repro.connectome.correlation import vector_index_to_region_pair
from repro.connectome.group import GroupMatrix
from repro.datasets.base import ScanRecord
from repro.exceptions import AttackError, ValidationError
from repro.gallery.factors import (
    _UNSTABLE,
    _stable_seed,
    cacheable_fit,
    fit_principal_features_cached,
    leverage_cache_key,
)
from repro.gallery.index import DEFAULT_INDEX_RANK, PruningIndex
from repro.gallery.matching import match_against_gallery, normalize_columns
from repro.linalg.leverage import PrincipalFeaturesSubspace
from repro.runtime.batch import build_group_matrix_batched
from repro.runtime.cache import ArtifactCache, get_default_cache
from repro.utils.rng import RandomStateLike
from repro.utils.validation import check_positive_int

PathLike = Union[str, Path]

#: On-disk layout of a saved gallery.
_ARRAYS_FILE = "gallery.npz"
_META_FILE = "gallery.json"
_FORMAT_VERSION = 1

#: Sentinel for "keep the persisted value" in :meth:`ReferenceGallery.load`.
_UNCHANGED = object()


class ReferenceGallery:
    """A fitted, persistent, incrementally growable identification gallery.

    Parameters
    ----------
    reference:
        De-anonymized reference :class:`~repro.connectome.group.GroupMatrix`
        (columns are enrolled subjects).
    n_features:
        Number of leverage-selected signature features.
    rank:
        Rank for the leverage scores (``None`` = full column space).
    fisher:
        Fisher-transform connectome features when building group matrices
        from scans (:meth:`identify`/:meth:`enroll`); must match how
        ``reference`` was built.
    method:
        ``"exact"`` or ``"randomized"`` SVD backend for the fit.
    random_state:
        Seed for the randomized backend.
    shard_size:
        Gallery columns per matching shard (``None`` = single block).
    cache:
        Artifact cache backing the fit; defaults to the process-wide cache.
        Give it a ``cache_dir`` to persist factors across processes.
    runner:
        Optional :class:`~repro.runtime.runner.ExperimentRunner` used to
        compute matching shards through a worker pool.
    backend:
        Matching-backend name for :meth:`identify` (``None`` = the bit-exact
        ``numpy64`` default; see :mod:`repro.runtime.backend`).  A runtime
        deployment knob like ``runner`` — it is not persisted by
        :meth:`save`.
    metadata:
        Free-form JSON-serializable dict persisted alongside the gallery
        (the CLI stores its dataset recipe here).
    index_rank / index_top_c:
        When ``index_rank`` is set, a :class:`~repro.gallery.index.PruningIndex`
        is fitted alongside the gallery (and *re*-fitted on every
        enroll-driven refit, so it can never serve stale candidates) for
        the serving layer's opt-in ``precision="indexed"`` tier.
        ``index_top_c`` overrides the per-probe candidate budget.

    Attributes
    ----------
    selector_:
        The fitted :class:`~repro.linalg.leverage.PrincipalFeaturesSubspace`.
    signatures_:
        ``(n_features, n_subjects)`` reduced reference matrix (the gallery).
    refit_count_:
        How many times the leverage fit actually ran for this object
        (enrollments that change nothing do not bump it).
    index_:
        The fitted :class:`~repro.gallery.index.PruningIndex`, or ``None``
        when no index tier was requested.
    """

    def __init__(
        self,
        reference: GroupMatrix,
        n_features: int = 100,
        rank: Optional[int] = None,
        fisher: bool = False,
        method: str = "exact",
        random_state: RandomStateLike = None,
        shard_size: Optional[int] = None,
        cache: Optional[ArtifactCache] = None,
        runner=None,
        backend: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
        index_rank: Optional[int] = None,
        index_top_c: Optional[int] = None,
    ):
        check_positive_int(n_features, name="n_features")
        if n_features > reference.n_features:
            raise AttackError(
                f"n_features ({n_features}) exceeds the connectome feature count "
                f"({reference.n_features})"
            )
        self.n_features = int(n_features)
        self.rank = rank
        self.fisher = bool(fisher)
        self.method = method
        self.random_state = random_state
        self.shard_size = shard_size
        self.cache = cache if cache is not None else get_default_cache()
        if runner is not None:
            warnings.warn(
                "passing runner= to ReferenceGallery is deprecated; worker-pool "
                "wiring is owned by the serving layer — use "
                "repro.service.ServiceConfig(max_workers=...) with a "
                "GalleryRegistry/IdentificationService (or assign "
                "gallery.runner after construction)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.runner = runner
        self.backend = backend
        self.metadata: Dict[str, Any] = dict(metadata) if metadata else {}
        self.reference = reference
        self.refit_count_ = 0
        self.selector_: Optional[PrincipalFeaturesSubspace] = None
        self.signatures_: Optional[np.ndarray] = None
        self._leverage_key: Optional[str] = None
        self._fingerprint: Optional[str] = None
        if index_rank is not None:
            check_positive_int(index_rank, name="index_rank")
        if index_top_c is not None:
            check_positive_int(index_top_c, name="index_top_c")
        self.index_rank = None if index_rank is None else int(index_rank)
        self.index_top_c = None if index_top_c is None else int(index_top_c)
        self.index_: Optional[PruningIndex] = None
        self._fit()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scans(
        cls,
        scans: Sequence[ScanRecord],
        n_features: int = 100,
        rank: Optional[int] = None,
        fisher: bool = False,
        method: str = "exact",
        random_state: RandomStateLike = None,
        shard_size: Optional[int] = None,
        cache: Optional[ArtifactCache] = None,
        runner=None,
        backend: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
        index_rank: Optional[int] = None,
        index_top_c: Optional[int] = None,
    ) -> "ReferenceGallery":
        """Build and fit a gallery from reference scans.

        The group matrix goes through the batched runtime path (one GEMM for
        the whole session, memoized under the ``group_matrix`` kind).
        """
        scans = list(scans)
        if not scans:
            raise AttackError("cannot build a gallery from zero scans")
        cache = cache if cache is not None else get_default_cache()
        reference = build_group_matrix_batched(scans, fisher=fisher, cache=cache)
        return cls(
            reference,
            n_features=n_features,
            rank=rank,
            fisher=fisher,
            method=method,
            random_state=random_state,
            shard_size=shard_size,
            cache=cache,
            runner=runner,
            backend=backend,
            metadata=metadata,
            index_rank=index_rank,
            index_top_c=index_top_c,
        )

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _fit(self) -> None:
        """(Re-)fit the selector and signature matrix through the cache.

        Fits whose results cannot be content-keyed (randomized SVD driven by
        a generator object) bypass the ``gallery`` cache entirely — a shared
        key would otherwise serve one draw's signatures to another draw's
        selected indices.
        """
        data = self.reference.data
        selector = fit_principal_features_cached(
            data,
            n_features=self.n_features,
            rank=self.rank,
            method=self.method,
            random_state=self.random_state,
            cache=self.cache,
        )
        self.selector_ = selector
        if self._cacheable:
            self.signatures_ = self.cache.get_or_compute(
                "gallery",
                self._gallery_key(data),
                lambda: np.ascontiguousarray(data[selector.selected_indices_, :]),
            )
        else:
            self.signatures_ = np.ascontiguousarray(data[selector.selected_indices_, :])
        self._leverage_key = leverage_cache_key(
            self.cache, data, rank=self.rank, method=self.method,
            random_state=self.random_state,
        )
        self._fingerprint = self._gallery_key(data)
        self.refit_count_ += 1
        # Any refit invalidates a previously fitted pruning index: the
        # signature matrix (and therefore the sketch) changed.  Rebuild it
        # here rather than lazily, so a stale index can never be observed.
        if self.index_rank is not None or self.index_ is not None:
            self._fit_index()

    def _fit_index(self) -> None:
        """(Re-)fit the pruning index over the current signature matrix."""
        rank = self.index_rank
        if rank is None:
            rank = (
                self.index_.rank if self.index_ is not None else DEFAULT_INDEX_RANK
            )
        normalized, _ = normalize_columns(self.signatures_)
        self.index_ = PruningIndex.fit(
            normalized,
            rank=rank,
            top_c=self.index_top_c,
            cache=self.cache if self._cacheable else None,
            fingerprint=self.fingerprint,
        )

    def ensure_index(
        self, rank: Optional[int] = None, top_c: Optional[int] = None
    ) -> PruningIndex:
        """The pruning index, fitted (or re-fitted) if absent or stale.

        ``rank``/``top_c`` update the gallery's index parameters when
        given; a fitted index whose fingerprint still matches the gallery
        is returned as-is.
        """
        if rank is not None:
            check_positive_int(rank, name="rank")
            if self.index_rank != int(rank):
                self.index_rank = int(rank)
                self.index_ = None
        if top_c is not None:
            check_positive_int(top_c, name="top_c")
            if self.index_top_c != int(top_c):
                self.index_top_c = int(top_c)
                self.index_ = None
        stale = (
            self.index_ is None
            or self.index_.sketch_.shape[1] != self.n_subjects
            or (
                self.index_.fingerprint is not None
                and self.index_.fingerprint != self.fingerprint
            )
        )
        if stale:
            self._fit_index()
        return self.index_

    @property
    def _cacheable(self) -> bool:
        """Whether this gallery's fit artifacts may be shared through the cache."""
        return cacheable_fit(self.rank, self.method, self.random_state)

    def _gallery_key(self, data: np.ndarray) -> str:
        """Content key of the reduced signature matrix under the ``gallery`` kind."""
        return self.cache.key(
            "gallery",
            data,
            n_features=self.n_features,
            rank=-1 if self.rank is None else int(self.rank),
            method=str(self.method),
            seed=self._seed_for_key(),
        )

    def _seed_for_key(self) -> int:
        seed = _stable_seed(self.random_state)
        if seed is None or seed is _UNSTABLE:
            return -1
        return int(seed)

    # ------------------------------------------------------------------ #
    # Identification
    # ------------------------------------------------------------------ #
    def identify(self, probe_scans: Sequence[ScanRecord]) -> MatchResult:
        """Identify a batch of anonymous probe scans against the gallery.

        The probe group matrix is built through the batched runtime and the
        artifact cache, so identifying the same probes again skips the
        connectome construction entirely.
        """
        probe_scans = list(probe_scans)
        if not probe_scans:
            raise AttackError("cannot identify zero probe scans")
        probe = build_group_matrix_batched(
            probe_scans, fisher=self.fisher, cache=self.cache
        )
        return self.identify_group(probe)

    def identify_group(self, probe: GroupMatrix) -> MatchResult:
        """Identify a pre-built probe group matrix against the gallery."""
        if probe.n_features != self.reference.n_features:
            raise AttackError(
                "probe and gallery must share the connectome feature space, "
                f"got {probe.n_features} and {self.reference.n_features} features"
            )
        reduced_probe = probe.data[self.selector_.selected_indices_, :]
        return match_against_gallery(
            self.signatures_,
            reduced_probe,
            reference_subject_ids=self.reference.subject_ids,
            target_subject_ids=probe.subject_ids,
            shard_size=self.shard_size,
            runner=self.runner,
            backend=self.backend,
        )

    # ------------------------------------------------------------------ #
    # Incremental enrollment
    # ------------------------------------------------------------------ #
    def enroll(self, scans: Sequence[ScanRecord]) -> int:
        """Append new subjects to the gallery; returns how many were added.

        Scans whose ``(subject_id, task, session)`` identity is already
        enrolled are skipped, so re-submitting a session is a no-op.  When
        anything was actually appended, the reference content key changes and
        the leverage scores are re-fitted (rank-aware, through the cache —
        re-enrolling a previously seen cohort state is a pure cache hit).
        """
        scans = list(scans)
        enrolled = set(self._scan_keys())
        new_scans = [
            scan
            for scan in scans
            if (scan.subject_id, scan.task or "", scan.session or "") not in enrolled
        ]
        if not new_scans:
            return 0
        addition = build_group_matrix_batched(
            new_scans, fisher=self.fisher, cache=self.cache
        )
        if addition.n_features != self.reference.n_features:
            raise AttackError(
                "enrolled scans must share the gallery's connectome feature space, "
                f"got {addition.n_features} and {self.reference.n_features} features"
            )
        merged = GroupMatrix(
            data=np.hstack([self.reference.data, addition.data]),
            subject_ids=self.reference.subject_ids + addition.subject_ids,
            tasks=self._merged_labels(self.reference.tasks, addition.tasks),
            sessions=self._merged_labels(self.reference.sessions, addition.sessions),
        )
        self.reference = merged
        self._fingerprint = None
        new_key = leverage_cache_key(
            self.cache, merged.data, rank=self.rank, method=self.method,
            random_state=self.random_state,
        )
        if new_key != self._leverage_key:
            self._fit()
        elif self.index_ is not None or self.index_rank is not None:
            # Content-keyed leverage keys change on every real append, so
            # this branch is defensive: even if the fit were skipped, the
            # index must track the new column set.
            self._fit_index()
        return len(new_scans)

    def _scan_keys(self) -> List[tuple]:
        tasks = self.reference.tasks or [""] * self.reference.n_scans
        sessions = self.reference.sessions or [""] * self.reference.n_scans
        return list(zip(self.reference.subject_ids, tasks, sessions))

    @staticmethod
    def _merged_labels(
        existing: Optional[List[str]], added: Optional[List[str]]
    ) -> Optional[List[str]]:
        if existing is None and added is None:
            return None
        existing = existing if existing is not None else []
        added = added if added is not None else []
        return list(existing) + list(added)

    # ------------------------------------------------------------------ #
    # Signature introspection
    # ------------------------------------------------------------------ #
    def signature_region_pairs(self, n_regions: int, top: Optional[int] = None) -> list:
        """Region pairs carrying the gallery's signature (most important first)."""
        indices = self.selector_.selected_indices_
        if top is not None:
            indices = indices[:top]
        return [vector_index_to_region_pair(int(i), n_regions) for i in indices]

    def as_attack(self):
        """A fitted :class:`~repro.attack.deanonymize.LeverageScoreAttack` view.

        Lets code written against the attack object (signature introspection,
        reference-override identify) reuse the gallery's fitted state without
        re-fitting.
        """
        from repro.attack.deanonymize import LeverageScoreAttack

        attack = LeverageScoreAttack(
            n_features=self.n_features,
            rank=self.rank,
            method=self.method,
            random_state=self.random_state,
        )
        attack.selector_ = self.selector_
        attack.selected_features_ = self.selector_.selected_indices_
        attack._reference = self.reference
        return attack

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Content hash of the fitted gallery (reference data + fit params).

        Memoized at fit/load time: serving paths key per-request artifacts
        on the fingerprint, and re-hashing megabytes of reference data per
        request would dominate a warm identify.  Every mutation of the
        fitted state (``_fit``, including enroll-driven refits) refreshes
        the memo.
        """
        if self._fingerprint is None:
            self._fingerprint = self._gallery_key(self.reference.data)
        return self._fingerprint

    def _integrity_digest(
        self,
        reference: np.ndarray,
        signatures: np.ndarray,
        selected_indices: np.ndarray,
        scores: np.ndarray,
        index_arrays: Optional[Sequence[np.ndarray]] = None,
    ) -> str:
        """Digest over *every* persisted array plus the fit parameters.

        This is what :meth:`load` verifies — unlike :attr:`fingerprint` it
        also covers the derived arrays (signatures, indices, scores, and
        the pruning-index arrays when one is persisted), so a corrupted or
        tampered archive cannot load silently.  Archives without an index
        hash exactly as before, keeping pre-index archives loadable.
        """
        parts = [reference, signatures, selected_indices, scores]
        if index_arrays is not None:
            parts.extend(index_arrays)
        return self.cache.key(
            "gallery-archive",
            *parts,
            n_features=self.n_features,
            rank=-1 if self.rank is None else int(self.rank),
            method=str(self.method),
            seed=self._seed_for_key(),
        )

    def save(self, directory: PathLike) -> Path:
        """Persist the fitted gallery into ``directory`` (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        arrays = {
            "reference": self.reference.data,
            "signatures": self.signatures_,
            "selected_indices": self.selector_.selected_indices_,
            "leverage_scores": self.selector_.scores_,
        }
        index_meta = None
        index_arrays = None
        if self.index_ is not None:
            index_arrays = (
                self.index_.projection_,
                self.index_.sketch_,
                self.index_.residual_,
            )
            arrays["index_projection"] = self.index_.projection_
            arrays["index_sketch"] = self.index_.sketch_
            arrays["index_residual"] = self.index_.residual_
            index_meta = {
                "rank": self.index_.rank,
                "top_c": self.index_.top_c,
                "method": self.index_.method,
                "seed": self.index_.seed,
            }
        np.savez_compressed(directory / _ARRAYS_FILE, **arrays)
        meta = {
            "format_version": _FORMAT_VERSION,
            "n_features": self.n_features,
            "rank": self.rank,
            "fisher": self.fisher,
            "method": self.method,
            "seed": None if self._seed_for_key() == -1 else self._seed_for_key(),
            "shard_size": self.shard_size,
            "subject_ids": self.reference.subject_ids,
            "tasks": self.reference.tasks,
            "sessions": self.reference.sessions,
            "fingerprint": self.fingerprint,
            "index": index_meta,
            "integrity": self._integrity_digest(
                self.reference.data,
                self.signatures_,
                self.selector_.selected_indices_,
                self.selector_.scores_,
                index_arrays=index_arrays,
            ),
            "metadata": self.metadata,
        }
        (directory / _META_FILE).write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(
        cls,
        directory: PathLike,
        cache: Optional[ArtifactCache] = None,
        runner=None,
        backend: Optional[str] = None,
        shard_size: Any = _UNCHANGED,
    ) -> "ReferenceGallery":
        """Load a saved gallery without re-fitting anything.

        The cached artifacts (leverage scores, signatures) are primed back
        into ``cache``, so a later :meth:`enroll` or a second gallery over
        the same cohort starts warm.  ``shard_size`` overrides the persisted
        value when given.
        """
        directory = Path(directory)
        meta_path = directory / _META_FILE
        arrays_path = directory / _ARRAYS_FILE
        if not meta_path.exists() or not arrays_path.exists():
            raise ValidationError(f"no saved gallery found in {directory}")
        meta = json.loads(meta_path.read_text())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValidationError(
                f"unsupported gallery format version {meta.get('format_version')!r}"
            )
        with np.load(arrays_path) as archive:
            reference_data = archive["reference"]
            signatures = archive["signatures"]
            selected_indices = archive["selected_indices"]
            leverage_scores_arr = archive["leverage_scores"]
            index_meta = meta.get("index")
            index_arrays = None
            if index_meta is not None:
                missing = [
                    name
                    for name in ("index_projection", "index_sketch", "index_residual")
                    if name not in archive.files
                ]
                if missing:
                    raise ValidationError(
                        "saved gallery failed its integrity check "
                        f"(index arrays {missing} are missing from the archive)"
                    )
                index_arrays = (
                    archive["index_projection"],
                    archive["index_sketch"],
                    archive["index_residual"],
                )

        gallery = cls.__new__(cls)
        gallery.n_features = int(meta["n_features"])
        gallery.rank = meta["rank"]
        gallery.fisher = bool(meta["fisher"])
        gallery.method = meta["method"]
        gallery.random_state = meta["seed"]
        gallery.shard_size = (
            meta["shard_size"] if shard_size is _UNCHANGED else shard_size
        )
        gallery.cache = cache if cache is not None else get_default_cache()
        gallery.runner = runner
        gallery.backend = backend
        gallery.metadata = meta.get("metadata") or {}
        gallery.reference = GroupMatrix(
            data=reference_data,
            subject_ids=list(meta["subject_ids"]),
            tasks=list(meta["tasks"]) if meta.get("tasks") is not None else None,
            sessions=list(meta["sessions"]) if meta.get("sessions") is not None else None,
        )
        selector = PrincipalFeaturesSubspace(
            n_features=gallery.n_features,
            rank=gallery.rank,
            method=gallery.method,
            random_state=gallery.random_state,
        )
        selector.scores_ = leverage_scores_arr
        selector.selected_indices_ = selected_indices
        gallery.selector_ = selector
        gallery.signatures_ = signatures
        gallery.refit_count_ = 0
        gallery._fingerprint = None
        gallery.index_ = None
        gallery.index_rank = None
        gallery.index_top_c = None

        integrity = gallery._integrity_digest(
            reference_data, signatures, selected_indices, leverage_scores_arr,
            index_arrays=index_arrays,
        )
        if meta.get("integrity") != integrity:
            raise ValidationError(
                "saved gallery failed its integrity check "
                "(the archive was modified or saved by incompatible parameters)"
            )
        fingerprint = gallery.fingerprint
        if index_meta is not None:
            gallery.index_rank = int(index_meta["rank"])
            gallery.index_top_c = (
                int(index_meta["top_c"]) if index_meta.get("top_c") is not None else None
            )
            gallery.index_ = PruningIndex(
                *index_arrays,
                rank=int(index_meta["rank"]),
                top_c=index_meta.get("top_c"),
                method=index_meta.get("method", "projection"),
                seed=int(index_meta.get("seed", 0)),
                fingerprint=fingerprint,
            )
        # Prime the cache so post-load enrollment and sibling galleries start
        # warm instead of refactorizing.  Uncacheable fits (randomized SVD
        # without an integer seed) must not be primed: their keys cannot
        # distinguish one draw from another.
        gallery._leverage_key = leverage_cache_key(
            gallery.cache, gallery.reference.data, rank=gallery.rank,
            method=gallery.method, random_state=gallery.random_state,
        )
        if gallery._cacheable:
            if gallery.cache.get("leverage", gallery._leverage_key) is None:
                gallery.cache.put("leverage", gallery._leverage_key, leverage_scores_arr)
            if gallery.cache.get("gallery", fingerprint) is None:
                gallery.cache.put("gallery", fingerprint, signatures)
        return gallery

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_subjects(self) -> int:
        """Number of enrolled subjects (gallery columns)."""
        return self.reference.n_scans

    def info(self) -> Dict[str, Any]:
        """Gallery state plus the cache statistics of the kinds it owns."""
        return {
            "n_subjects": self.n_subjects,
            "n_features_total": self.reference.n_features,
            "n_features_selected": self.n_features,
            "rank": self.rank,
            "method": self.method,
            "fisher": self.fisher,
            "shard_size": self.shard_size,
            "backend": self.backend,
            "refit_count": self.refit_count_,
            "fingerprint": self.fingerprint,
            "index": None if self.index_ is None else self.index_.describe(),
            "cache": {
                kind: self.cache.stats(kind).as_dict()
                for kind in ("gallery", "leverage", "svd", "group_matrix", "index")
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReferenceGallery(subjects={self.n_subjects}, "
            f"features={self.n_features}/{self.reference.n_features}, "
            f"method={self.method!r}, shard_size={self.shard_size})"
        )
