"""Tests for the ADHD-200-like cohort generator."""

import numpy as np
import pytest

from repro.datasets.adhd200 import ADHD_SUBTYPES, ADHD200LikeDataset
from repro.exceptions import DatasetError


class TestADHD200LikeDataset:
    def test_cohort_composition(self, small_adhd):
        assert small_adhd.n_subjects == 18
        assert len(small_adhd.diagnoses) == 18
        controls = small_adhd.indices_for_diagnosis("control")
        assert len(controls) == 9

    def test_cases_split_across_subtypes(self, small_adhd):
        subtype_counts = [
            len(small_adhd.indices_for_diagnosis(f"adhd_subtype_{i}")) for i in (1, 2, 3)
        ]
        assert sum(subtype_counts) == 9
        assert all(count > 0 for count in subtype_counts)

    def test_invalid_diagnosis_rejected(self, small_adhd):
        with pytest.raises(DatasetError):
            small_adhd.indices_for_diagnosis("adhd_subtype_9")

    def test_sites_assigned_to_all_subjects(self, small_adhd):
        assert len(small_adhd.subject_sites) == small_adhd.n_subjects
        assert set(small_adhd.subject_sites) <= set(small_adhd.sites)

    def test_cases_have_group_loading(self, small_adhd):
        case_index = small_adhd.indices_for_diagnosis("adhd_subtype_1")[0]
        control_index = small_adhd.indices_for_diagnosis("control")[0]
        assert small_adhd.population.subject(case_index).group_loading is not None
        assert small_adhd.population.subject(control_index).group_loading is None

    def test_scan_metadata(self, small_adhd):
        scan = small_adhd.generate_scan(0, session=1)
        assert scan.task == "REST"
        assert scan.session == "SESSION1"
        assert scan.site in small_adhd.sites
        assert scan.diagnosis in ADHD_SUBTYPES
        assert scan.timeseries.shape == (small_adhd.n_regions, small_adhd.n_timepoints)

    def test_invalid_session_rejected(self, small_adhd):
        with pytest.raises(DatasetError):
            small_adhd.generate_scan(0, session=3)

    def test_scans_deterministic(self, small_adhd):
        a = small_adhd.generate_scan(2, session=1)
        b = small_adhd.generate_scan(2, session=1)
        np.testing.assert_allclose(a.timeseries, b.timeseries)

    def test_sessions_differ(self, small_adhd):
        a = small_adhd.generate_scan(2, session=1)
        b = small_adhd.generate_scan(2, session=2)
        assert not np.allclose(a.timeseries, b.timeseries)

    def test_session_pair_alignment(self, small_adhd):
        pair = small_adhd.session_pair()
        assert pair["reference"].subject_ids == pair["target"].subject_ids
        assert pair["reference"].n_scans == small_adhd.n_subjects

    def test_subtype_session_pair_restricted(self, small_adhd):
        pair = small_adhd.subtype_session_pair("adhd_subtype_1")
        expected = len(small_adhd.indices_for_diagnosis("adhd_subtype_1"))
        assert pair["reference"].n_scans == expected

    def test_feature_count_matches_aal2_at_paper_scale(self):
        # 116 regions -> 6670 features, the number quoted in the paper.
        dataset = ADHD200LikeDataset(
            n_cases=3, n_controls=3, n_regions=116, n_timepoints=64, random_state=0
        )
        pair = dataset.session_pair()
        assert pair["reference"].n_features == 6670

    def test_invalid_constructor_arguments(self):
        with pytest.raises(DatasetError):
            ADHD200LikeDataset(n_cases=3, n_controls=3, n_regions=20, n_timepoints=64, tr=-1.0)
        with pytest.raises(DatasetError):
            ADHD200LikeDataset(n_cases=3, n_controls=3, sites=[])
