"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main


def _shm_segments():
    """Live repro shared-memory segments (the leak check)."""
    from repro.runtime.shm import SEGMENT_PREFIX

    shm_root = Path("/dev/shm")
    if not shm_root.exists():  # pragma: no cover - non-Linux
        return []
    return sorted(path.name for path in shm_root.glob(f"{SEGMENT_PREFIX}-*"))


class TestListCommand:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_experiment_registry_covers_all_paper_results(self):
        assert set(EXPERIMENTS) == {
            "figure1",
            "figure2",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "table1",
            "table2",
            "defense",
        }


class TestDemoCommand:
    def test_demo_prints_attack_report(self, capsys):
        exit_code = main(
            [
                "demo",
                "--subjects", "8",
                "--regions", "40",
                "--timepoints", "100",
                "--features", "60",
                "--seed", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "identification accuracy" in output


class TestRunCommand:
    def test_run_single_experiment_and_save(self, capsys, tmp_path, monkeypatch):
        # Patch in a tiny configuration so the CLI test stays fast.
        from repro.experiments import ADHDExperimentConfig, HCPExperimentConfig
        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "_configs",
            lambda paper_scale: (
                HCPExperimentConfig(
                    n_subjects=8, n_regions=30, n_timepoints=80,
                    n_features=40, n_labelled_subjects=4,
                    tsne_iterations=80, performance_repetitions=2,
                    multisite_repetitions=1, multisite_n_timepoints=80, seed=1,
                ),
                ADHDExperimentConfig(
                    n_cases=4, n_controls=4, n_regions=24, n_timepoints=80,
                    n_features=40, identification_repetitions=2, seed=1,
                ),
            ),
        )
        exit_code = main(["run", "figure1", "--save", str(tmp_path / "fig1")])
        output = capsys.readouterr().out
        assert "figure1" in output
        assert (tmp_path / "fig1.json").exists()
        assert exit_code in (0, 1)  # shape may not hold at this tiny scale

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])


class TestGalleryCommand:
    def _build(self, tmp_path, capsys, **overrides):
        args = {
            "--subjects": "8", "--regions": "28", "--timepoints": "70",
            "--features": "50", "--seed": "2",
        }
        args.update(overrides)
        argv = ["gallery", "build", "--dir", str(tmp_path / "gal")]
        for key, value in args.items():
            argv.extend([key, value])
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_build_saves_a_gallery(self, tmp_path, capsys):
        output = self._build(tmp_path, capsys)
        assert "built gallery: 8 subjects" in output
        assert (tmp_path / "gal" / "gallery.npz").exists()
        assert (tmp_path / "gal" / "gallery.json").exists()

    def test_identify_reports_accuracy_and_cache(self, tmp_path, capsys):
        self._build(tmp_path, capsys)
        assert main(
            ["gallery", "identify", "--dir", str(tmp_path / "gal"), "--repeat", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "identification accuracy" in output
        assert "hits" in output

    def test_enroll_grows_the_gallery(self, tmp_path, capsys):
        self._build(tmp_path, capsys)
        assert main(
            ["gallery", "enroll", "--dir", str(tmp_path / "gal"), "--extra-subjects", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "enrolled 3 new subject(s)" in output
        assert "11 subjects" in output
        assert main(["gallery", "info", "--dir", str(tmp_path / "gal")]) == 0
        assert "subjects enrolled   : 11" in capsys.readouterr().out

    def test_info_prints_fingerprint_and_cache_kinds(self, tmp_path, capsys):
        self._build(tmp_path, capsys)
        assert main(["gallery", "info", "--dir", str(tmp_path / "gal")]) == 0
        output = capsys.readouterr().out
        assert "fingerprint" in output
        for kind in ("gallery", "leverage", "svd", "group_matrix"):
            assert kind in output

    def test_randomized_build(self, tmp_path, capsys):
        output = self._build(
            tmp_path, capsys, **{"--method": "randomized", "--rank": "4"}
        )
        assert "randomized SVD" in output

    def test_missing_gallery_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["gallery"])

    def test_missing_gallery_directory_is_a_clean_error(self, tmp_path, capsys):
        assert main(["gallery", "info", "--dir", str(tmp_path / "nope")]) == 1
        assert "no saved gallery" in capsys.readouterr().err


class TestServeCommand:
    def _build(self, tmp_path, capsys, **overrides):
        args = {
            "--subjects": "8", "--regions": "28", "--timepoints": "70",
            "--features": "50", "--seed": "2",
        }
        args.update(overrides)
        argv = ["gallery", "build", "--dir", str(tmp_path / "gal")]
        for key, value in args.items():
            argv.extend([key, value])
        assert main(argv) == 0
        capsys.readouterr()
        return tmp_path / "gal"

    def _drop_recipe(self, gallery_dir):
        """Strip the dataset recipe from a saved gallery's metadata."""
        meta_path = gallery_dir / "gallery.json"
        meta = json.loads(meta_path.read_text())
        meta["metadata"].pop("dataset", None)
        meta_path.write_text(json.dumps(meta, indent=2))

    def test_serve_rounds_reuse_one_event_loop_and_coalesce(self, tmp_path, capsys):
        gallery_dir = self._build(tmp_path, capsys)
        assert main(
            ["serve", "--dir", str(gallery_dir), "--requests", "4", "--rounds", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "round 1 (cold)" in output
        assert "round 2 (warm)" in output
        assert "max coalesced batch: 4" in output
        # All rounds ran inside ONE asyncio.run: a single live micro-batcher.
        assert "micro-batchers      : 1 event loop(s)" in output

    def test_serve_missing_recipe_exits_1_and_releases_resources(
        self, tmp_path, capsys
    ):
        gallery_dir = self._build(tmp_path, capsys)
        self._drop_recipe(gallery_dir)
        assert main(["serve", "--dir", str(gallery_dir)]) == 1
        assert "no dataset recipe" in capsys.readouterr().err
        assert _shm_segments() == []

    def test_serve_missing_gallery_exits_1_and_releases_resources(
        self, tmp_path, capsys
    ):
        assert main(["serve", "--dir", str(tmp_path / "nope")]) == 1
        assert "no saved gallery" in capsys.readouterr().err
        assert _shm_segments() == []

    def test_serve_with_process_pool_leaves_no_shm_segments(self, tmp_path, capsys):
        """Sharded process-pool serving publishes /dev/shm segments; every
        exit path of ``serve`` must release them."""
        gallery_dir = self._build(tmp_path, capsys, **{"--shard-size": "4"})
        assert main(
            [
                "serve", "--dir", str(gallery_dir),
                "--requests", "2", "--rounds", "1",
                "--workers", "2", "--executor", "process",
            ]
        ) == 0
        assert "served 2 concurrent requests" in capsys.readouterr().out
        assert _shm_segments() == []

    def test_gallery_identify_missing_recipe_exits_1(self, tmp_path, capsys):
        gallery_dir = self._build(tmp_path, capsys)
        self._drop_recipe(gallery_dir)
        assert main(["gallery", "identify", "--dir", str(gallery_dir)]) == 1
        assert "no dataset recipe" in capsys.readouterr().err
        assert _shm_segments() == []


class TestServeHttpCommand:
    @pytest.mark.integration
    def test_http_mode_serves_and_drains_on_sigint(self, tmp_path):
        """End-to-end: build a gallery, `serve --http 0` in a subprocess,
        identify over HTTP, SIGINT, assert graceful drain and no shm leak."""
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.datasets.hcp import HCPLikeDataset
        from repro.service import ServiceClient

        gallery_dir = tmp_path / "gal"
        assert main(
            [
                "gallery", "build", "--dir", str(gallery_dir),
                "--subjects", "6", "--regions", "24", "--timepoints", "60",
                "--features", "40", "--seed", "3",
            ]
        ) == 0

        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_dir}:{env.get('PYTHONPATH', '')}".rstrip(":")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dir", str(gallery_dir), "--http", "0", "--window", "0.01",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = None
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                if line.startswith("serving gallery"):
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port is not None, "server never announced its port"

            probes = HCPLikeDataset(
                n_subjects=6, n_regions=24, n_timepoints=60, random_state=3
            ).generate_session("REST", encoding="RL", day=2)
            with ServiceClient(port=port) as client:
                assert client.healthz()["status"] == "ok"
                response = client.identify(gallery="gal", scans=probes[:2])
                assert response.ok and response.n_probes == 2

            process.send_signal(signal.SIGINT)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - hung server
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "shutdown: in-flight batches drained" in output
        assert "requests served over HTTP: 2" in output
        assert _shm_segments() == []


class TestRoutedServeCommand:
    """`serve --router-workers N`: the CLI front end of the gallery router."""

    def _build(self, tmp_path, capsys):
        gallery_dir = tmp_path / "routed-gal"
        assert main(
            [
                "gallery", "build", "--dir", str(gallery_dir),
                "--subjects", "6", "--regions", "24", "--timepoints", "60",
                "--features", "40", "--seed", "4",
            ]
        ) == 0
        capsys.readouterr()
        return gallery_dir

    def test_serve_rounds_routed_reports_fleet_and_accuracy(self, tmp_path, capsys):
        gallery_dir = self._build(tmp_path, capsys)
        assert main(
            [
                "serve", "--dir", str(gallery_dir),
                "--requests", "2", "--rounds", "2", "--router-workers", "2",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "round 2 (warm)" in output
        assert "identification accuracy" in output
        # Aggregated stats carry the fleet line: all workers alive, no respawns.
        assert "router              : 2/2 workers alive" in output
        assert "0 respawn(s)" in output
        assert _shm_segments() == []

    def test_serve_routed_missing_gallery_exits_1(self, tmp_path, capsys):
        assert main(
            ["serve", "--dir", str(tmp_path / "absent"), "--router-workers", "2"]
        ) == 1
        assert "no saved gallery" in capsys.readouterr().err
        assert _shm_segments() == []

    @pytest.mark.integration
    def test_routed_http_serves_heals_and_drains_on_sigint(self, tmp_path):
        """End-to-end routed mode: banner shows the fleet, `gallery info`
        still works against the same directory while the server is live,
        /stats aggregates the router block, SIGINT drains every worker."""
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.datasets.hcp import HCPLikeDataset
        from repro.service import ServiceClient

        gallery_dir = tmp_path / "gal"
        assert main(
            [
                "gallery", "build", "--dir", str(gallery_dir),
                "--subjects", "6", "--regions", "24", "--timepoints", "60",
                "--features", "40", "--seed", "3",
            ]
        ) == 0

        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_dir}:{env.get('PYTHONPATH', '')}".rstrip(":")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dir", str(gallery_dir), "--http", "0", "--window", "0.01",
                "--router-workers", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            # Own session: forked workers share the server's process group,
            # so the failure path below can reap the whole fleet at once
            # (the workers also hold the stdout pipe open — a plain
            # ``process.kill()`` would leave ``communicate()`` hanging).
            start_new_session=True,
        )
        try:
            port = None
            banner = []
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                banner.append(line)
                if line.startswith("serving gallery"):
                    port = int(line.rsplit(":", 1)[1])
                if line.startswith("  - worker-1"):
                    break
            assert port is not None, "server never announced its port"
            banner_text = "".join(banner)
            assert "router: 2 worker process(es)" in banner_text
            assert "worker-0 (pid " in banner_text

            probes = HCPLikeDataset(
                n_subjects=6, n_regions=24, n_timepoints=60, random_state=3
            ).generate_session("REST", encoding="RL", day=2)
            with ServiceClient(port=port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert set(health["workers"]) == {"worker-0", "worker-1"}
                response = client.identify(gallery="gal", scans=probes[:2])
                assert response.ok and response.n_probes == 2
                stats = client.stats()
                assert stats.requests == 1
                assert stats.router["workers"] == 2
                assert stats.router["respawns"] == 0
            # The gallery directory stays a plain saved gallery: `gallery
            # info` reads it directly, routed server or not.
            assert main(["gallery", "info", "--dir", str(gallery_dir)]) == 0

            process.send_signal(signal.SIGINT)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - hung server
                os.killpg(process.pid, signal.SIGKILL)
                process.communicate()
        assert process.returncode == 0, output
        assert "shutdown: in-flight batches drained" in output
        assert "requests served over HTTP: 3" in output  # healthz + identify + stats
        assert "router              : " in output
        assert _shm_segments() == []

    @pytest.mark.integration
    def test_routed_http_drains_on_sigterm_without_zombies_or_segments(
        self, tmp_path
    ):
        """Satellite: SIGTERM (the supervisor's signal, not a terminal's
        SIGINT) must drain the routed fleet the same way — exit 0, drained
        banner, no surviving processes in the group, no shm segments."""
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.datasets.hcp import HCPLikeDataset
        from repro.service import ServiceClient

        gallery_dir = tmp_path / "gal"
        assert main(
            [
                "gallery", "build", "--dir", str(gallery_dir),
                "--subjects", "6", "--regions", "24", "--timepoints", "60",
                "--features", "40", "--seed", "3",
            ]
        ) == 0

        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src_dir}:{env.get('PYTHONPATH', '')}".rstrip(":")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dir", str(gallery_dir), "--http", "0", "--window", "0.01",
                "--router-workers", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            start_new_session=True,  # own group: killable as one fleet
        )
        try:
            port = None
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                if line.startswith("serving gallery"):
                    port = int(line.rsplit(":", 1)[1])
                if line.startswith("  - worker-1"):
                    break
            assert port is not None, "server never announced its port"
            # Make a gallery resident first, so the drain has real shm
            # segments and loaded workers to release — not an idle fleet.
            probes = HCPLikeDataset(
                n_subjects=6, n_regions=24, n_timepoints=60, random_state=3
            ).generate_session("REST", encoding="RL", day=2)
            with ServiceClient(port=port) as client:
                response = client.identify(gallery="gal", scans=probes[:2])
                assert response.ok
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - hung server
                os.killpg(process.pid, signal.SIGKILL)
                process.communicate()
        assert process.returncode == 0, output
        assert "shutdown: in-flight batches drained" in output
        # No zombies: the whole session (server + forked workers) is gone.
        group_deadline = time.monotonic() + 10.0
        while time.monotonic() < group_deadline:
            try:
                os.killpg(process.pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        else:  # pragma: no cover - leaked fleet
            pytest.fail("worker fleet survived SIGTERM")
        assert _shm_segments() == []


class TestFaultPlanFlag:
    """`serve --fault-plan PATH`: loading, validation, and the banner."""

    def _build(self, tmp_path, capsys):
        gallery_dir = tmp_path / "gal"
        assert main(
            [
                "gallery", "build", "--dir", str(gallery_dir),
                "--subjects", "6", "--regions", "24", "--timepoints", "60",
                "--features", "40", "--seed", "5",
            ]
        ) == 0
        capsys.readouterr()
        return gallery_dir

    def test_missing_plan_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(
            [
                "serve", "--dir", str(tmp_path / "gal"),
                "--fault-plan", str(tmp_path / "absent.json"),
            ]
        ) == 1
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_invalid_json_is_a_clean_error(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text("not json {{")
        assert main(
            ["serve", "--dir", str(tmp_path / "gal"), "--fault-plan", str(plan_path)]
        ) == 1
        assert "is not valid JSON" in capsys.readouterr().err

    def test_invalid_plan_spec_is_a_configuration_error(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({"rules": [{"site": "worker.teleport"}]}))
        assert main(
            ["serve", "--dir", str(tmp_path / "gal"), "--fault-plan", str(plan_path)]
        ) == 1
        err = capsys.readouterr().err
        assert "serve failed" in err and "unknown fault site" in err

    def test_valid_plan_prints_the_banner_and_serves(self, tmp_path, capsys):
        from repro.runtime.faults import install_plan

        gallery_dir = self._build(tmp_path, capsys)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "seed": 0,
            "rules": [{"site": "worker.slow_reply", "delay_s": 0.0, "limit": 1}],
        }))
        try:
            assert main(
                [
                    "serve", "--dir", str(gallery_dir),
                    "--requests", "1", "--rounds", "1",
                    "--fault-plan", str(plan_path),
                ]
            ) == 0
            output = capsys.readouterr().out
            assert f"fault injection: 1 rule(s) loaded from {plan_path}" in output
        finally:
            # serve installed the plan process-wide; never leak it into
            # other in-process tests.
            install_plan(None)


class TestRuntimeInfoCommand:
    def test_runtime_info_prints_cache_workers_and_blas(self, capsys):
        assert main(["runtime-info"]) == 0
        output = capsys.readouterr().out
        assert "cache stats" in output
        assert "workers" in output
        assert "blas detection" in output

    def test_runtime_info_reflects_worker_flags(self, capsys):
        assert main(["runtime-info", "--workers", "5", "--executor", "process"]) == 0
        output = capsys.readouterr().out
        assert "max_workers=5" in output
        assert "executor=process" in output

    def test_runtime_info_reports_single_process_router_by_default(self, capsys):
        assert main(["runtime-info"]) == 0
        output = capsys.readouterr().out
        assert "gallery router      : (single process" in output

    def test_runtime_info_reflects_router_flags(self, capsys):
        assert main(
            ["runtime-info", "--router-workers", "3", "--ring-replicas", "32"]
        ) == 0
        output = capsys.readouterr().out
        assert "3 worker process(es)" in output
        assert "ring size 96" in output
        assert "32 virtual nodes per worker" in output


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
