"""Serving layer: the typed public API of the identification system.

This package is the recommended entrypoint for consuming the attack as a
service (datasets → gallery → service):

``messages``
    Typed request/response dataclasses (:class:`IdentifyRequest`,
    :class:`IdentifyResponse`, :class:`EnrollRequest`,
    :class:`EnrollResponse`, :class:`ServiceStats`) with JSON round-trip.
``config``
    :class:`ServiceConfig` — every cache/shard/worker/batching knob of a
    deployment in one validated, serializable object.
``registry``
    :class:`GalleryRegistry` — named, persistable
    :class:`~repro.gallery.reference.ReferenceGallery` instances sharing one
    artifact cache and runner pool.
``service``
    :class:`IdentificationService` — sync and ``asyncio`` identification,
    with the async path micro-batching concurrent requests into one stacked
    sharded match (bit-identical to serial identifies).
``codec``
    The wire codecs of the HTTP transport: the JSON scan form (the
    bit-identity oracle) and the ``application/x-repro-frames`` binary
    frame codec (raw little-endian float64 buffers behind a JSON header).
    Normative spec: ``docs/protocol.md``.
``http``
    :class:`HttpServiceServer` / :class:`ServiceClient` — a stdlib-asyncio
    HTTP front end over ``identify_async`` (``POST /identify``,
    ``POST /enroll``, ``GET /stats``, ``GET /healthz``) with persistent
    pipelined keep-alive connections, content-negotiated codecs, and a
    streaming binary enroll path; responses are bit-identical to in-process
    identifies under either codec.
``fleet`` / ``router`` / ``worker``
    Multi-process scale-out, split control/data plane.
    :class:`FleetControlPlane` owns membership (the consistent-hash
    :class:`HashRing`), worker spawn/reap/respawn, live
    ``add_worker``/``remove_worker`` resizes (warm before commit, drain
    after commit), the breaker registry, and stats carry-forward;
    :class:`GalleryRouter` is the pure data plane — route → frame →
    dispatch → retry — with per-worker TTL/LRU residency over the shared
    root and routed responses bit-identical to single-process serving,
    including during a resize.
``resilience``
    The failure-handling policies behind the router: per-request
    :class:`Deadline` budgets, :class:`RetryPolicy` (bounded, jittered
    exponential backoff, idempotent identifies only), the per-worker
    consecutive-failure :class:`CircuitBreaker` that degrades an arc until
    a health ping heals it, and the fleet's :class:`BreakerRegistry`
    (incarnation-tagged breakers, retired on removal).  Chaos testing
    drives them through :class:`~repro.runtime.faults.FaultPlan`
    (``ServiceConfig.fault_plan``).
"""

from repro.service.config import ServiceConfig
from repro.service.messages import (
    EnrollRequest,
    EnrollResponse,
    IdentifyRequest,
    IdentifyResponse,
    ServiceStats,
)
from repro.service.registry import GalleryRegistry
from repro.service.service import IdentificationService
from repro.service.codec import CONTENT_TYPE_BINARY, CONTENT_TYPE_JSON, FrameError
from repro.service.http import (
    BackgroundHttpServer,
    HttpServiceError,
    HttpServiceServer,
    ServiceClient,
)
from repro.service.resilience import (
    BreakerRegistry,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.service.fleet import FleetControlPlane, ResizeInProgress
from repro.service.router import GalleryRouter, HashRing

__all__ = [
    "CONTENT_TYPE_BINARY",
    "CONTENT_TYPE_JSON",
    "FrameError",
    "ServiceConfig",
    "EnrollRequest",
    "EnrollResponse",
    "IdentifyRequest",
    "IdentifyResponse",
    "ServiceStats",
    "GalleryRegistry",
    "IdentificationService",
    "BackgroundHttpServer",
    "HttpServiceError",
    "HttpServiceServer",
    "ServiceClient",
    "FleetControlPlane",
    "GalleryRouter",
    "HashRing",
    "ResizeInProgress",
    "BreakerRegistry",
    "CircuitBreaker",
    "Deadline",
    "ResiliencePolicy",
    "RetryPolicy",
]
