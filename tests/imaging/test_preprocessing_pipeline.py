"""Tests for the end-to-end preprocessing pipeline."""

import numpy as np
import pytest

from repro.exceptions import PreprocessingError
from repro.imaging.acquisition import ScannerSimulator
from repro.imaging.preprocessing import (
    PreprocessingPipeline,
    default_adhd_pipeline,
    default_hcp_pipeline,
)
from repro.utils.stats import correlation_matrix


@pytest.fixture()
def acquisition(small_phantom, small_atlas, rng):
    simulator = ScannerSimulator(small_phantom, small_atlas)
    signals = rng.standard_normal((small_atlas.n_regions, 120))
    return simulator.acquire(signals, random_state=0, subject_id="sub-x"), signals


class TestPipeline:
    def test_full_run_output_shape(self, small_atlas, acquisition):
        volume, _ = acquisition
        pipeline = default_hcp_pipeline(small_atlas, bandpass=False)
        timeseries = pipeline.run(volume)
        assert timeseries.shape == (small_atlas.n_regions, volume.n_timepoints)

    def test_output_is_zscored(self, small_atlas, acquisition):
        volume, _ = acquisition
        pipeline = default_hcp_pipeline(small_atlas, bandpass=False)
        timeseries = pipeline.run(volume)
        np.testing.assert_allclose(timeseries.mean(axis=1), 0.0, atol=1e-8)

    def test_recovers_planted_correlation_structure(self, small_atlas, small_phantom, rng):
        # Build region signals with a known strong correlation between regions
        # 0 and 1, push them through scanner + preprocessing, and check the
        # correlation survives.
        shared = rng.standard_normal(150)
        signals = rng.standard_normal((small_atlas.n_regions, 150))
        signals[0] = shared + 0.1 * rng.standard_normal(150)
        signals[1] = shared + 0.1 * rng.standard_normal(150)
        simulator = ScannerSimulator(small_phantom, small_atlas)
        volume = simulator.acquire(signals, random_state=1)

        pipeline = default_hcp_pipeline(
            small_atlas, bandpass=False, global_signal_regression=False
        )
        recovered = pipeline.run(volume)
        corr = correlation_matrix(recovered)
        assert corr[0, 1] > 0.7

    def test_adhd_pipeline_runs(self, small_atlas, acquisition):
        volume, _ = acquisition
        pipeline = default_adhd_pipeline(small_atlas)
        timeseries = pipeline.run(volume)
        assert timeseries.shape[0] == small_atlas.n_regions

    def test_spatial_phase_only(self, small_atlas, acquisition):
        volume, _ = acquisition
        pipeline = default_hcp_pipeline(small_atlas, bandpass=False)
        cleaned = pipeline.run_spatial(volume)
        assert cleaned.spatial_shape == volume.spatial_shape

    def test_temporal_phase_only(self, small_atlas, rng):
        pipeline = default_hcp_pipeline(small_atlas, bandpass=False)
        timeseries = rng.standard_normal((small_atlas.n_regions, 100))
        cleaned = pipeline.run_temporal(timeseries, tr=0.72)
        assert cleaned.shape == timeseries.shape

    def test_rejects_non_volume_input(self, small_atlas, rng):
        pipeline = default_hcp_pipeline(small_atlas)
        with pytest.raises(PreprocessingError):
            pipeline.run(rng.standard_normal((4, 4, 4, 10)))

    def test_pipeline_without_steps_is_parcellation_only(self, small_atlas, acquisition):
        volume, _ = acquisition
        pipeline = PreprocessingPipeline(atlas=small_atlas)
        timeseries = pipeline.run(volume)
        assert timeseries.shape == (small_atlas.n_regions, volume.n_timepoints)

    def test_estimated_brain_mask_used(self, small_atlas, acquisition):
        volume, _ = acquisition
        pipeline = default_hcp_pipeline(small_atlas, bandpass=False)
        pipeline.run(volume)
        assert pipeline._estimated_brain_mask() is not None

    def test_mask_can_be_disabled(self, small_atlas, acquisition):
        volume, _ = acquisition
        pipeline = default_hcp_pipeline(small_atlas, bandpass=False)
        pipeline.use_estimated_brain_mask = False
        assert pipeline._estimated_brain_mask() is None
