"""Vanilla (asymmetric, Gaussian) Stochastic Neighbour Embedding.

The paper introduces t-SNE by first describing SNE and its shortcomings
(asymmetric KL objective, data crowding, per-point variance estimation).  The
SNE implementation here exists as a baseline so the ablation benchmarks can
show *why* the heavier-tailed Student-t output kernel matters for separating
task clusters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.embedding.pca import PCA
from repro.embedding.perplexity import conditional_probabilities, squared_euclidean_distances
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.rng import RandomStateLike, as_rng
from repro.utils.validation import check_matrix, check_positive_int

_EPS = 1e-12


class SNE:
    """Gaussian SNE with the asymmetric KL objective (paper Section 3.1.3).

    The interface mirrors :class:`repro.embedding.tsne.TSNE`.

    Parameters are a subset of the t-SNE parameters; see that class for their
    meaning.
    """

    def __init__(
        self,
        n_components: int = 2,
        perplexity: float = 30.0,
        learning_rate: float = 10.0,
        n_iterations: int = 300,
        momentum: float = 0.8,
        pca_components: Optional[int] = 50,
        random_state: RandomStateLike = None,
    ):
        self.n_components = check_positive_int(n_components, name="n_components")
        if perplexity < 1.0:
            raise ValidationError(f"perplexity must be >= 1, got {perplexity}")
        self.perplexity = float(perplexity)
        self.learning_rate = float(learning_rate)
        self.n_iterations = check_positive_int(n_iterations, name="n_iterations")
        self.momentum = float(momentum)
        self.pca_components = pca_components
        self.random_state = random_state
        self.embedding_: Optional[np.ndarray] = None

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Compute and return the SNE embedding of ``data``."""
        x = check_matrix(data, name="data", min_rows=4)
        n_samples = x.shape[0]
        if self.perplexity >= n_samples:
            raise ValidationError(
                f"perplexity ({self.perplexity}) must be < n_samples ({n_samples})"
            )
        if self.pca_components is not None and self.pca_components < x.shape[1]:
            x = PCA(n_components=min(self.pca_components, min(x.shape))).fit_transform(x)

        p_conditional = conditional_probabilities(x, perplexity=self.perplexity)
        rng = as_rng(self.random_state)
        embedding = rng.normal(0.0, 1e-2, size=(n_samples, self.n_components))
        velocity = np.zeros_like(embedding)

        for _ in range(self.n_iterations):
            q_conditional = self._embedding_conditionals(embedding)
            gradient = self._gradient(p_conditional, q_conditional, embedding)
            # Clip the gradient norm: plain SNE has no adaptive gains and can
            # otherwise diverge for well-separated inputs.
            gradient_norm = np.linalg.norm(gradient)
            if gradient_norm > 10.0:
                gradient = gradient * (10.0 / gradient_norm)
            velocity = self.momentum * velocity - self.learning_rate * gradient
            embedding = embedding + velocity
            embedding -= embedding.mean(axis=0, keepdims=True)

        self.embedding_ = embedding
        return embedding

    def fit(self, data: np.ndarray) -> "SNE":
        """Fit the embedding (see :meth:`fit_transform`)."""
        self.fit_transform(data)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Return the stored embedding (SNE is transductive)."""
        if self.embedding_ is None:
            raise NotFittedError("SNE must be fitted before calling transform")
        return self.embedding_

    @staticmethod
    def _embedding_conditionals(embedding: np.ndarray) -> np.ndarray:
        """Gaussian conditional probabilities in the embedding (fixed unit variance)."""
        sq_distances = squared_euclidean_distances(embedding)
        logits = -sq_distances
        np.fill_diagonal(logits, -np.inf)
        logits -= logits.max(axis=1, keepdims=True)
        weights = np.exp(logits)
        np.fill_diagonal(weights, 0.0)
        totals = weights.sum(axis=1, keepdims=True)
        totals = np.where(totals < _EPS, 1.0, totals)
        return weights / totals

    @staticmethod
    def _gradient(
        p: np.ndarray, q: np.ndarray, embedding: np.ndarray
    ) -> np.ndarray:
        """SNE gradient (paper Equation 9)."""
        coefficient = (p - q) + (p - q).T
        sums = coefficient.sum(axis=1)
        return 2.0 * (np.diag(sums) @ embedding - coefficient @ embedding)
