"""Tests for pairwise similarity analysis (Figures 1/2/7/8 machinery)."""

import numpy as np
import pytest

from repro.connectome.similarity import (
    dual_identification_accuracy,
    identification_accuracy_from_similarity,
    pairwise_similarity,
    similarity_contrast,
)
from repro.exceptions import ValidationError


class TestPairwiseSimilarity:
    def test_shape(self, rest_pair):
        similarity = pairwise_similarity(rest_pair["reference"], rest_pair["target"])
        assert similarity.shape == (
            rest_pair["reference"].n_scans,
            rest_pair["target"].n_scans,
        )

    def test_diagonal_dominates_for_rest_scans(self, rest_pair):
        similarity = pairwise_similarity(rest_pair["reference"], rest_pair["target"])
        contrast = similarity_contrast(similarity)
        assert contrast["contrast"] > 0.1

    def test_feature_subset_changes_result(self, rest_pair, rng):
        full = pairwise_similarity(rest_pair["reference"], rest_pair["target"])
        subset = pairwise_similarity(
            rest_pair["reference"],
            rest_pair["target"],
            feature_indices=np.arange(50),
        )
        assert not np.allclose(full, subset)

    def test_feature_space_mismatch_raises(self, rest_pair):
        truncated = rest_pair["target"].select_features(np.arange(10))
        with pytest.raises(ValidationError):
            pairwise_similarity(rest_pair["reference"], truncated)


def _similarity_contrast_loop(similarity: np.ndarray) -> dict:
    """The original per-element/loop implementation, kept as the test oracle."""
    sim = np.asarray(similarity, dtype=float)
    n = min(sim.shape)
    diagonal = np.array([sim[i, i] for i in range(n)])
    mask = np.ones_like(sim, dtype=bool)
    for i in range(n):
        mask[i, i] = False
    off_diagonal = sim[mask]
    return {
        "diagonal_mean": float(diagonal.mean()),
        "diagonal_std": float(diagonal.std()),
        "off_diagonal_mean": float(off_diagonal.mean()),
        "off_diagonal_std": float(off_diagonal.std()),
        "contrast": float(diagonal.mean() - off_diagonal.mean()),
    }


class TestSimilarityContrast:
    def test_known_matrix(self):
        similarity = np.array([[0.9, 0.1], [0.2, 0.8]])
        contrast = similarity_contrast(similarity)
        assert contrast["diagonal_mean"] == pytest.approx(0.85)
        assert contrast["off_diagonal_mean"] == pytest.approx(0.15)
        assert contrast["contrast"] == pytest.approx(0.70)

    @pytest.mark.parametrize("shape", [(2, 2), (7, 7), (5, 9), (9, 5), (1, 4)])
    def test_vectorized_matches_loop_implementation(self, rng, shape):
        similarity = rng.standard_normal(shape)
        vectorized = similarity_contrast(similarity)
        looped = _similarity_contrast_loop(similarity)
        assert set(vectorized) == set(looped)
        for key, value in looped.items():
            assert vectorized[key] == value, key

    def test_vectorized_matches_loop_on_real_similarity(self, rest_pair):
        similarity = pairwise_similarity(rest_pair["reference"], rest_pair["target"])
        assert similarity_contrast(similarity) == _similarity_contrast_loop(similarity)


class TestIdentificationAccuracy:
    def test_perfect_identity_matrix(self):
        assert identification_accuracy_from_similarity(np.eye(5)) == 1.0

    def test_permuted_matrix_scores_zero(self):
        similarity = np.roll(np.eye(5), shift=1, axis=1)
        assert identification_accuracy_from_similarity(similarity) == 0.0

    def test_axis_direction(self):
        similarity = np.array([[0.9, 0.8], [0.1, 0.2]])
        # Row-wise argmax: row 0 -> col 0 (correct), row 1 -> col 1 (correct).
        assert identification_accuracy_from_similarity(similarity, axis=1) == 1.0
        # Column-wise argmax: col 0 -> row 0 (correct), col 1 -> row 0 (wrong).
        assert identification_accuracy_from_similarity(similarity, axis=0) == 0.5

    def test_dual_accuracy(self):
        similarity = np.array([[0.9, 0.8], [0.1, 0.2]])
        forward, backward = dual_identification_accuracy(similarity)
        assert forward == 1.0 and backward == 0.5

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValidationError):
            identification_accuracy_from_similarity(rng.standard_normal((3, 4)))

    def test_rejects_bad_axis(self):
        with pytest.raises(ValidationError):
            identification_accuracy_from_similarity(np.eye(3), axis=2)
