"""Tests for the exception hierarchy."""

import pytest

from repro import exceptions


def test_all_errors_derive_from_repro_error():
    for name in (
        "ValidationError",
        "ConfigurationError",
        "DimensionMismatchError",
        "NotFittedError",
        "AtlasError",
        "PreprocessingError",
        "DatasetError",
        "AttackError",
    ):
        error_class = getattr(exceptions, name)
        assert issubclass(error_class, exceptions.ReproError)


def test_validation_error_is_value_error():
    assert issubclass(exceptions.ValidationError, ValueError)


def test_not_fitted_error_is_runtime_error():
    assert issubclass(exceptions.NotFittedError, RuntimeError)


def test_dimension_mismatch_is_validation_error():
    assert issubclass(exceptions.DimensionMismatchError, exceptions.ValidationError)


def test_errors_can_carry_messages():
    with pytest.raises(exceptions.AttackError, match="boom"):
        raise exceptions.AttackError("boom")
