"""HCP-like cohort generator.

Mirrors the structure of the Human Connectome Project healthy young adult
release the paper uses (Section 3.2): each subject is scanned in two sessions
spread over two days; each session contains a resting-state run and task
runs; every run exists in a left-to-right (L-R) and a right-to-left (R-L)
phase-encoding variant.  The paper's identification experiments use the L-R
encodings as the de-anonymized dataset and the R-L encodings as the anonymous
target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.connectome.group import GroupMatrix
from repro.datasets.base import CohortDataset, ScanRecord
from repro.datasets.subject import SubjectPopulation
from repro.datasets.tasks import TaskDefinition, default_hcp_task_battery
from repro.exceptions import DatasetError
from repro.utils.rng import RandomStateLike
from repro.utils.validation import check_positive_int

#: Phase-encoding directions of HCP runs.
ENCODINGS = ("LR", "RL")


class HCPLikeDataset(CohortDataset):
    """Synthetic stand-in for the HCP healthy young adult cohort.

    Parameters
    ----------
    n_subjects:
        Cohort size (the paper uses 100 unrelated subjects).
    n_regions:
        Atlas granularity (360 for the Glasser atlas; smaller values give
        faster experiments with the same qualitative behaviour).
    n_timepoints:
        Frames per run.
    tr:
        Repetition time in seconds (0.72 s in HCP).
    tasks:
        Task battery; defaults to the eight HCP conditions.
    random_state:
        Base seed for the whole cohort.
    population_kwargs:
        Extra keyword arguments forwarded to :class:`SubjectPopulation`
        (e.g. ``fingerprint_distinctiveness`` or ``measurement_noise_std``).
    """

    def __init__(
        self,
        n_subjects: int = 100,
        n_regions: int = 360,
        n_timepoints: int = 180,
        tr: float = 0.72,
        tasks: Optional[Sequence[TaskDefinition]] = None,
        random_state: RandomStateLike = 0,
        **population_kwargs,
    ):
        self.n_subjects = check_positive_int(n_subjects, name="n_subjects", minimum=2)
        self.n_regions = check_positive_int(n_regions, name="n_regions", minimum=8)
        self.n_timepoints = check_positive_int(n_timepoints, name="n_timepoints", minimum=32)
        if tr <= 0:
            raise DatasetError(f"tr must be positive, got {tr}")
        self.tr = float(tr)
        self.tasks: List[TaskDefinition] = list(tasks or default_hcp_task_battery())
        if not self.tasks:
            raise DatasetError("task battery must not be empty")
        self._task_by_name = {task.name: task for task in self.tasks}

        self.population = SubjectPopulation(
            n_subjects=self.n_subjects,
            n_regions=self.n_regions,
            performance_tasks=[
                t.name for t in self.tasks if t.has_performance_metric
            ],
            subject_prefix="hcp",
            random_state=random_state,
            **population_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def subject_ids(self) -> List[str]:
        """Identifiers of all subjects in the cohort."""
        return self.population.subject_ids()

    def task_names(self) -> List[str]:
        """Names of the conditions in this dataset's battery."""
        return [task.name for task in self.tasks]

    def task(self, name: str) -> TaskDefinition:
        """Task definition by name (restricted to this dataset's battery)."""
        key = name.upper()
        if key not in self._task_by_name:
            raise DatasetError(
                f"task {name!r} is not part of this dataset; available: {self.task_names()}"
            )
        return self._task_by_name[key]

    # ------------------------------------------------------------------ #
    # Scan generation
    # ------------------------------------------------------------------ #
    def session_label(self, task_name: str, encoding: str, day: int = 1) -> str:
        """Compose the run label, e.g. ``"REST1_LR"`` or ``"LANGUAGE2_RL"``."""
        if encoding not in ENCODINGS:
            raise DatasetError(f"encoding must be one of {ENCODINGS}, got {encoding!r}")
        if day not in (1, 2):
            raise DatasetError(f"day must be 1 or 2, got {day}")
        return f"{task_name}{day}_{encoding}"

    def generate_scan(
        self,
        subject_index: int,
        task_name: str,
        encoding: str = "LR",
        day: int = 1,
    ) -> ScanRecord:
        """Generate a single run for one subject."""
        task = self.task(task_name)
        session = self.session_label(task.name, encoding, day)
        timeseries = self.population.generate_timeseries(
            subject_index=subject_index,
            task=task,
            session=session,
            n_timepoints=self.n_timepoints,
            tr=self.tr,
        )
        subject = self.population.subject(subject_index)
        performance = (
            subject.performance_percent(task.name) if task.has_performance_metric else None
        )
        return ScanRecord(
            subject_id=subject.subject_id,
            task=task.name,
            session=session,
            timeseries=timeseries,
            performance=performance,
        )

    def generate_session(
        self, task_name: str, encoding: str = "LR", day: int = 1
    ) -> List[ScanRecord]:
        """Generate the given run for every subject in the cohort."""
        return [
            self.generate_scan(i, task_name, encoding=encoding, day=day)
            for i in range(self.n_subjects)
        ]

    def group_matrix(
        self, task_name: str, encoding: str = "LR", day: int = 1, fisher: bool = False
    ) -> GroupMatrix:
        """Group matrix of one run across the whole cohort."""
        scans = self.generate_session(task_name, encoding=encoding, day=day)
        return self.scans_to_group_matrix(scans, fisher=fisher)

    def encoding_pair(
        self, task_name: str, fisher: bool = False
    ) -> Dict[str, GroupMatrix]:
        """The (de-anonymized, anonymous) pair the paper matches across.

        The L-R encoding of day 1 plays the role of the identified dataset and
        the R-L encoding of day 2 the anonymous target.
        """
        return {
            "reference": self.group_matrix(task_name, encoding="LR", day=1, fisher=fisher),
            "target": self.group_matrix(task_name, encoding="RL", day=2, fisher=fisher),
        }

    def performance_table(self, task_name: str) -> np.ndarray:
        """Per-subject performance metric for a task with a published measure."""
        task = self.task(task_name)
        if not task.has_performance_metric:
            raise DatasetError(f"task {task_name!r} has no performance metric")
        return np.asarray(
            [
                self.population.subject(i).performance_percent(task.name)
                for i in range(self.n_subjects)
            ],
            dtype=np.float64,
        )

    def all_conditions_group_matrix(
        self, encoding: str = "LR", day: int = 1, fisher: bool = False
    ) -> GroupMatrix:
        """Group matrix stacking every condition of every subject.

        This is the 800-scan matrix (100 subjects x 8 conditions in the
        paper) used by the t-SNE task-prediction experiment.
        """
        scans: List[ScanRecord] = []
        for task in self.tasks:
            scans.extend(self.generate_session(task.name, encoding=encoding, day=day))
        return self.scans_to_group_matrix(scans, fisher=fisher)
