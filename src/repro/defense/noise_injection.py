"""Targeted noise injection on signature features.

The defense perturbs only the connectome features that carry the identifying
signature (the top-leverage features), leaving the rest of the connectome —
and therefore most downstream analyses — untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.connectome.group import GroupMatrix
from repro.exceptions import ValidationError
from repro.linalg.leverage import PrincipalFeaturesSubspace
from repro.utils.rng import RandomStateLike, as_rng


def add_noise_to_features(
    group: GroupMatrix,
    feature_indices: np.ndarray,
    noise_scale: float,
    random_state: RandomStateLike = None,
) -> GroupMatrix:
    """Add Gaussian noise to the selected features of every subject.

    Parameters
    ----------
    group:
        Group matrix to protect (features x subjects).
    feature_indices:
        Which features (rows) to perturb.
    noise_scale:
        Noise standard deviation expressed as a multiple of each selected
        feature's across-subject standard deviation.
    random_state:
        Seed for the noise.
    """
    if noise_scale < 0:
        raise ValidationError(f"noise_scale must be non-negative, got {noise_scale}")
    feature_indices = np.asarray(feature_indices, dtype=int)
    if feature_indices.size == 0:
        return GroupMatrix(
            data=group.data.copy(),
            subject_ids=list(group.subject_ids),
            tasks=list(group.tasks) if group.tasks is not None else None,
            sessions=list(group.sessions) if group.sessions is not None else None,
        )
    if feature_indices.min() < 0 or feature_indices.max() >= group.n_features:
        raise ValidationError("feature indices out of range for the group matrix")

    rng = as_rng(random_state)
    data = group.data.copy()
    selected = data[feature_indices, :]
    scales = selected.std(axis=1, keepdims=True)
    scales = np.where(scales < 1e-12, 1.0, scales)
    data[feature_indices, :] = selected + noise_scale * scales * rng.standard_normal(
        selected.shape
    )
    return GroupMatrix(
        data=data,
        subject_ids=list(group.subject_ids),
        tasks=list(group.tasks) if group.tasks is not None else None,
        sessions=list(group.sessions) if group.sessions is not None else None,
    )


def shuffle_features_across_subjects(
    group: GroupMatrix,
    feature_indices: np.ndarray,
    random_state: RandomStateLike = None,
) -> GroupMatrix:
    """Stronger defense: permute the selected features across subjects.

    Shuffling destroys the subject-feature association entirely while keeping
    every feature's marginal distribution (and hence group-level statistics)
    intact.
    """
    feature_indices = np.asarray(feature_indices, dtype=int)
    if feature_indices.size and (
        feature_indices.min() < 0 or feature_indices.max() >= group.n_features
    ):
        raise ValidationError("feature indices out of range for the group matrix")
    rng = as_rng(random_state)
    data = group.data.copy()
    for feature in feature_indices:
        data[feature, :] = rng.permutation(data[feature, :])
    return GroupMatrix(
        data=data,
        subject_ids=list(group.subject_ids),
        tasks=list(group.tasks) if group.tasks is not None else None,
        sessions=list(group.sessions) if group.sessions is not None else None,
    )


@dataclass
class SignatureNoiseDefense:
    """Locate the signature with leverage scores and perturb only it.

    Parameters
    ----------
    n_features:
        Number of top-leverage features treated as the signature.
    noise_scale:
        Noise standard deviation in units of per-feature across-subject
        standard deviation (``strategy="noise"``).
    strategy:
        ``"noise"`` adds Gaussian noise to the signature features,
        ``"shuffle"`` permutes them across subjects.
    random_state:
        Seed for the perturbation.
    """

    n_features: int = 100
    noise_scale: float = 2.0
    strategy: str = "noise"
    random_state: RandomStateLike = None
    signature_features_: Optional[np.ndarray] = field(default=None, repr=False)

    def protect(self, group: GroupMatrix) -> GroupMatrix:
        """Return a protected copy of ``group``."""
        if self.strategy not in ("noise", "shuffle"):
            raise ValidationError(
                f"strategy must be 'noise' or 'shuffle', got {self.strategy!r}"
            )
        n_features = min(self.n_features, group.n_features)
        selector = PrincipalFeaturesSubspace(n_features=n_features).fit(group.data)
        self.signature_features_ = selector.selected_indices_
        if self.strategy == "noise":
            return add_noise_to_features(
                group,
                self.signature_features_,
                noise_scale=self.noise_scale,
                random_state=self.random_state,
            )
        return shuffle_features_across_subjects(
            group, self.signature_features_, random_state=self.random_state
        )
