"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_rng,
    iter_seeded,
    permutation,
    sample_without_replacement,
    seeds_from,
    spawn_rngs,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_rng(42).integers(0, 1000, size=10)
        b = as_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_numpy_integer_seed(self):
        gen = as_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].standard_normal(100)
        b = children[1].standard_normal(100)
        assert not np.allclose(a, b)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_reproducible_from_seed(self):
        a = spawn_rngs(9, 3)[1].integers(0, 100, 5)
        b = spawn_rngs(9, 3)[1].integers(0, 100, 5)
        np.testing.assert_array_equal(a, b)


class TestHelpers:
    def test_seeds_from_count_and_range(self):
        seeds = seeds_from(1, 10)
        assert len(seeds) == 10
        assert all(0 <= s < 2**31 for s in seeds)

    def test_permutation_is_a_permutation(self):
        perm = permutation(20, random_state=3)
        assert sorted(perm.tolist()) == list(range(20))

    def test_sample_without_replacement_unique(self):
        sample = sample_without_replacement(30, 10, random_state=2)
        assert len(set(sample.tolist())) == 10

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            sample_without_replacement(5, 6)

    def test_iter_seeded_pairs(self):
        items = ["a", "b", "c"]
        pairs = list(iter_seeded(items, random_state=0))
        assert [p[0] for p in pairs] == items
        assert all(isinstance(p[1], np.random.Generator) for p in pairs)
