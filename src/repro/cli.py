"""Command-line interface.

Installed as the ``repro-attack`` console script (also runnable as
``python -m repro.cli``).  Six subcommands cover the common workflows:

``list``
    Show the available experiments (one per paper figure/table).
``run <experiment>``
    Run one experiment through the batched runtime, print its
    paper-vs-measured comparison, and optionally persist the record.
``report``
    Run every experiment through the :class:`~repro.runtime.ExperimentRunner`
    (optionally in parallel) and write EXPERIMENTS.md-style markdown.
``demo``
    Run the core de-anonymization attack on a freshly generated cohort and
    print the identification report with its timing breakdown.
``gallery build|enroll|identify|info``
    Operate a persistent identification gallery through the service-layer
    :class:`~repro.service.registry.GalleryRegistry`: fit it once from a
    reference session and save it to disk, append subjects incrementally,
    serve repeated identify queries against it (warm-cache, optionally
    sharded), and inspect its state (including the disk cache tier).
``serve``
    Batch-identify through the :class:`~repro.service.IdentificationService`
    async API: concurrent identify requests against a saved gallery are
    micro-batched into stacked sharded matches (bit-identical to serial
    identifies), and the serving statistics are printed.  With ``--http
    PORT`` it instead exposes the gallery over the stdlib-asyncio HTTP
    front end (``POST /identify``, ``POST /enroll``, ``GET /stats``,
    ``GET /healthz``) until SIGINT/SIGTERM, draining in-flight batches on
    shutdown.
``runtime-info``
    Print cache statistics (including the disk tier), worker configuration,
    and the detected BLAS threading setup.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.experiments import (
    ADHDExperimentConfig,
    HCPExperimentConfig,
    generate_experiments_markdown,
    paper_scale_adhd_config,
    paper_scale_hcp_config,
)
from repro.reporting.experiment import ExperimentRecord
from repro.runtime import (
    PAPER_EXPERIMENTS,
    ExperimentRunner,
    ExperimentSpec,
    format_runtime_info,
    get_default_cache,
    paper_experiment_specs,
    runtime_info,
    summarize_results,
    write_results_json,
)

#: Experiment id -> one-line description (mirrors the runtime registry).
EXPERIMENTS: Dict[str, str] = dict(PAPER_EXPERIMENTS)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-attack",
        description="Reproduction of 'De-anonymization Attacks on Neuroimaging Datasets'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--paper-scale", action="store_true", help="use the paper-sized configuration"
    )
    run_parser.add_argument(
        "--save", metavar="PATH", default=None, help="persist the record to PATH(.json/.npz)"
    )

    report_parser = subparsers.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report_parser.add_argument("--output", default="EXPERIMENTS.md")
    report_parser.add_argument("--paper-scale", action="store_true")
    report_parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker threads used to run experiments in parallel",
    )
    report_parser.add_argument(
        "--timings", metavar="PATH", default=None,
        help="also write per-experiment RunResult timings to PATH (JSON)",
    )

    demo_parser = subparsers.add_parser("demo", help="run the core attack on a fresh cohort")
    demo_parser.add_argument("--subjects", type=int, default=30)
    demo_parser.add_argument("--regions", type=int, default=100)
    demo_parser.add_argument("--timepoints", type=int, default=180)
    demo_parser.add_argument("--task", default="REST")
    demo_parser.add_argument("--features", type=int, default=100)
    demo_parser.add_argument("--seed", type=int, default=0)

    gallery_parser = subparsers.add_parser(
        "gallery", help="build, grow, and query a persistent identification gallery"
    )
    gallery_sub = gallery_parser.add_subparsers(dest="gallery_command", required=True)

    build_parser = gallery_sub.add_parser(
        "build", help="fit a gallery from a reference session and save it"
    )
    build_parser.add_argument("--dir", required=True, help="gallery directory")
    build_parser.add_argument("--subjects", type=_positive_int, default=16)
    build_parser.add_argument("--regions", type=_positive_int, default=64)
    build_parser.add_argument("--timepoints", type=_positive_int, default=120)
    build_parser.add_argument("--task", default="REST")
    build_parser.add_argument("--features", type=_positive_int, default=100)
    build_parser.add_argument("--rank", type=_positive_int, default=None)
    build_parser.add_argument(
        "--method", choices=("exact", "randomized"), default="exact",
        help="SVD backend for the leverage-score fit",
    )
    build_parser.add_argument("--shard-size", type=_positive_int, default=None)
    build_parser.add_argument("--seed", type=int, default=0)
    build_parser.add_argument(
        "--index", action="store_true",
        help="also fit the candidate-pruning index and save it with the "
        "gallery (serving opts in with --precision indexed)",
    )
    build_parser.add_argument(
        "--index-rank", type=_positive_int, default=None,
        help="sketch rank of the pruning index (default: 16)",
    )
    build_parser.add_argument(
        "--index-top-c", type=_positive_int, default=None,
        help="per-probe candidate budget re-ranked exactly "
        "(default: max(64, 4*rank))",
    )

    enroll_parser = gallery_sub.add_parser(
        "enroll", help="append newly scanned subjects to a saved gallery"
    )
    enroll_parser.add_argument("--dir", required=True)
    enroll_parser.add_argument(
        "--extra-subjects", type=_positive_int, default=4,
        help="how many additional cohort subjects to enroll",
    )

    identify_parser = gallery_sub.add_parser(
        "identify", help="identify an anonymous probe session against a saved gallery"
    )
    identify_parser.add_argument("--dir", required=True)
    identify_parser.add_argument(
        "--repeat", type=_positive_int, default=1,
        help="identify the same probes N times (shows warm-cache reuse)",
    )
    identify_parser.add_argument(
        "--codec", choices=("json", "binary"), default=None,
        help="route the identify over an in-process HTTP server using this "
        "request codec instead of calling in process (responses are "
        "bit-identical either way; see docs/protocol.md)",
    )
    _add_backend_arguments(identify_parser)

    info_parser_gallery = gallery_sub.add_parser(
        "info", help="print the state and cache statistics of a saved gallery"
    )
    info_parser_gallery.add_argument("--dir", required=True)

    serve_parser = subparsers.add_parser(
        "serve",
        help="micro-batch concurrent identify requests against a saved gallery",
    )
    serve_parser.add_argument("--dir", required=True, help="saved gallery directory")
    serve_parser.add_argument(
        "--requests", type=_positive_int, default=8,
        help="how many concurrent identify requests to serve",
    )
    serve_parser.add_argument(
        "--rounds", type=_positive_int, default=2,
        help="serve the same request load N times (round 2+ shows warm serving)",
    )
    serve_parser.add_argument(
        "--max-batch", type=_positive_int, default=64,
        help="most requests coalesced into one stacked match",
    )
    serve_parser.add_argument(
        "--window", type=float, default=0.0,
        help="micro-batch window in seconds (0 = coalesce per event-loop tick)",
    )
    serve_parser.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve over HTTP on PORT instead of running synthetic rounds "
        "(0 = ephemeral port; SIGINT drains in-flight batches and exits)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address of the HTTP server"
    )
    serve_parser.add_argument(
        "--codec", choices=("json", "binary"), default="json",
        help="request codec advertised in the HTTP banner; the server "
        "always accepts both Content-Types (see docs/protocol.md)",
    )
    serve_parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="shard-matching worker pool size (1 = inline matching)",
    )
    serve_parser.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker pool kind for sharded matching",
    )
    serve_parser.add_argument(
        "--router-workers", type=int, default=0, metavar="N",
        help="routed mode: partition galleries across N service worker "
        "processes via a consistent-hash ring (0 = single-process serving); "
        "the gallery root is the parent of --dir",
    )
    serve_parser.add_argument(
        "--request-deadline", type=float, default=None, metavar="SECONDS",
        help="routed mode: deadline on every router->worker read; a worker "
        "that does not reply in time is reaped and respawned (default 30)",
    )
    serve_parser.add_argument(
        "--drain-deadline", type=float, default=None, metavar="SECONDS",
        help="routed mode: how long remove_worker waits for a leaving "
        "worker to drain before falling back to the crash path (default 30)",
    )
    serve_parser.add_argument(
        "--admin-token", default=None, metavar="TOKEN",
        help="enable POST /admin/workers (live fleet add/remove) behind "
        "this bearer token; omitted = the admin endpoint stays disabled",
    )
    serve_parser.add_argument(
        "--rescale-file", default=None, metavar="PATH",
        help="routed mode: file holding the target fleet size; SIGHUP "
        "re-reads it and adds/removes workers to match (default: "
        "<gallery-root>/fleet-size)",
    )
    serve_parser.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="JSON fault-injection plan for chaos/soak testing (see "
        "docs/serving.md for the format); faults fire deterministically "
        "from the plan's seeded schedule",
    )
    _add_backend_arguments(serve_parser)

    info_parser = subparsers.add_parser(
        "runtime-info",
        help="print cache statistics, worker configuration, and BLAS threading",
    )
    info_parser.add_argument("--workers", type=_positive_int, default=1)
    info_parser.add_argument("--executor", choices=("thread", "process"), default="thread")
    info_parser.add_argument(
        "--router-workers", type=int, default=0, metavar="N",
        help="report the gallery-router fleet shape for N workers",
    )
    info_parser.add_argument(
        "--ring-replicas", type=_positive_int, default=64,
        help="virtual nodes per worker on the consistent-hash ring",
    )
    return parser


def _add_backend_arguments(parser) -> None:
    """Shared ``--backend``/``--precision`` policy flags (serving commands)."""
    from repro.runtime.backend import (
        AUTO_BACKEND,
        INDEXED_PRECISION,
        PRECISIONS,
        available_backends,
    )

    parser.add_argument(
        "--backend",
        choices=[*available_backends(), AUTO_BACKEND],
        default=None,
        help="matching backend (default: the bit-exact numpy64; "
        "'auto' picks the fastest for the chosen precision)",
    )
    parser.add_argument(
        "--precision",
        choices=[*PRECISIONS, INDEXED_PRECISION],
        default="float64",
        help="matching precision; float32 is opt-in (rank agreement, "
        "not bit-identity); 'indexed' routes identifies through the "
        "candidate-pruning index (exact top-1 and margin, sublinear scans)",
    )


def _configs(paper_scale: bool):
    if paper_scale:
        return paper_scale_hcp_config(), paper_scale_adhd_config()
    return HCPExperimentConfig(), ADHDExperimentConfig()


def _print_record(record: ExperimentRecord) -> None:
    print(f"{record.experiment_id}: {record.title}")
    for comparison in record.comparisons:
        status = "ok" if comparison.matches_shape else "MISMATCH"
        print(f"  [{status:8s}] {comparison.description}")
        print(f"             paper:    {comparison.paper_value}")
        print(f"             measured: {comparison.measured_value}")
    print(
        "shape holds" if record.shape_holds() else "SHAPE MISMATCH — see comparisons above"
    )


def _command_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        print(f"{name.ljust(width)}  {EXPERIMENTS[name]}")
    return 0


def _command_run(args) -> int:
    hcp_config, adhd_config = _configs(args.paper_scale)
    runner = ExperimentRunner()
    spec = ExperimentSpec(
        name=args.experiment,
        kind="experiment",
        params={
            "experiment": args.experiment,
            "hcp_config": hcp_config,
            "adhd_config": adhd_config,
        },
    )
    result = runner.run_one(spec)
    if not result.ok:
        print(f"{args.experiment} failed: {result.error}", file=sys.stderr)
        return 1
    record: ExperimentRecord = result.output
    _print_record(record)
    print(f"wall-clock: {result.total_seconds:.2f} s")
    if args.save:
        record.save(args.save)
        print(f"record saved to {args.save}")
    return 0 if record.shape_holds() else 1


def _command_report(args) -> int:
    hcp_config, adhd_config = _configs(args.paper_scale)
    runner = ExperimentRunner(max_workers=args.workers)
    results = runner.run(paper_experiment_specs(hcp_config, adhd_config))
    failed = [result for result in results if not result.ok]
    for result in failed:
        print(f"{result.name} failed: {result.error}", file=sys.stderr)
    records = {result.name: result.output for result in results if result.ok}
    generate_experiments_markdown(records, output_path=args.output)
    print(summarize_results(results))
    print(f"wrote {args.output}")
    if args.timings:
        write_results_json(results, args.timings)
        print(f"wrote {args.timings}")
    return 1 if failed else 0


def _command_demo(args) -> int:
    runner = ExperimentRunner()
    spec = ExperimentSpec(
        name="demo",
        kind="attack",
        seed=args.seed,
        params={
            "n_subjects": args.subjects,
            "n_regions": args.regions,
            "n_timepoints": args.timepoints,
            "n_features": args.features,
            "task": args.task,
            "dataset_seed": args.seed,
        },
    )
    result = runner.run_one(spec)
    if not result.ok:
        print(f"demo failed: {result.error}", file=sys.stderr)
        return 1
    print(result.output)
    timings = ", ".join(
        f"{name}={seconds:.2f}s" for name, seconds in sorted(result.timings.items())
    )
    print()
    print(f"timings: {timings}")
    return 0


def _command_runtime_info(args) -> int:
    runner = ExperimentRunner(max_workers=args.workers, executor=args.executor)
    print(
        format_runtime_info(
            runtime_info(
                cache=get_default_cache(),
                runner=runner,
                router_workers=args.router_workers,
                ring_replicas=args.ring_replicas,
            )
        )
    )
    return 0


# --------------------------------------------------------------------------- #
# Gallery / serve subcommands (routed through the service layer)
# --------------------------------------------------------------------------- #
def _gallery_dataset(recipe: Dict):
    """Recreate the synthetic cohort a gallery was built from."""
    from repro.datasets.hcp import HCPLikeDataset

    return HCPLikeDataset(
        n_subjects=int(recipe["n_subjects"]),
        n_regions=int(recipe["n_regions"]),
        n_timepoints=int(recipe["n_timepoints"]),
        random_state=int(recipe["seed"]),
    )


def _registry_for(directory, config=None):
    """A :class:`~repro.service.GalleryRegistry` rooted next to ``directory``.

    The CLI addresses galleries by directory; the registry addresses them by
    name under a root — so ``--dir a/b/gal`` maps to root ``a/b`` and name
    ``gal``.
    """
    from repro.service import GalleryRegistry

    directory = Path(directory)
    root = directory.parent if str(directory.parent) else Path(".")
    return GalleryRegistry(root=root, config=config), directory.name


def _print_cache_kinds(cache, kinds) -> None:
    """Per-kind cache counters (memory + disk tiers) for operator output."""
    for kind in kinds:
        stats = cache.stats(kind)
        print(
            f"  - {kind:<13s}: hits={stats.hits} misses={stats.misses} "
            f"disk_hits={stats.disk_hits} hit_rate={stats.hit_rate:.2f}"
        )


def _command_gallery_build(args) -> int:
    from repro.service import ServiceConfig

    recipe = {
        "n_subjects": args.subjects,
        "n_regions": args.regions,
        "n_timepoints": args.timepoints,
        "task": args.task,
        "seed": args.seed,
    }
    dataset = _gallery_dataset(recipe)
    scans = dataset.generate_session(args.task, encoding="LR", day=1)
    n_features = min(args.features, dataset.n_regions * (dataset.n_regions - 1) // 2)
    config = ServiceConfig(
        n_features=n_features,
        rank=args.rank,
        method=args.method,
        random_state=args.seed,
        shard_size=args.shard_size,
        index_enabled=args.index,
        index_rank=args.index_rank,
        index_top_c=args.index_top_c,
    )
    registry, name = _registry_for(args.dir, config=config)
    try:
        gallery = registry.build(name, scans, metadata={"dataset": recipe})
        registry.persist(name)
        print(
            f"built gallery: {gallery.n_subjects} subjects, "
            f"{gallery.n_features}/{gallery.reference.n_features} features "
            f"({gallery.method} SVD), saved to {args.dir}"
        )
        if gallery.index_ is not None:
            print(
                f"pruning index: rank={gallery.index_.rank} "
                f"top_c={gallery.index_.top_c or '(auto)'} "
                f"method={gallery.index_.method}"
            )
        print(f"fingerprint: {gallery.fingerprint[:16]}…")
        return 0
    finally:
        registry.close()


def _command_gallery_enroll(args) -> int:
    registry, name = _registry_for(args.dir)
    try:
        gallery = registry.get(name)
        recipe = dict(gallery.metadata.get("dataset") or {})
        if not recipe:
            print("gallery carries no dataset recipe; cannot synthesize new subjects",
                  file=sys.stderr)
            return 1
        recipe["n_subjects"] = int(recipe["n_subjects"]) + args.extra_subjects
        dataset = _gallery_dataset(recipe)
        scans = dataset.generate_session(recipe["task"], encoding="LR", day=1)
        added = registry.enroll(name, scans)
        gallery.metadata["dataset"] = recipe
        registry.persist(name)
        print(
            f"enrolled {added} new subject(s); gallery now holds "
            f"{gallery.n_subjects} subjects (refits: {gallery.refit_count_})"
        )
        return 0
    finally:
        registry.close()


def _command_gallery_identify(args) -> int:
    from repro.service import IdentificationService, IdentifyRequest, ServiceConfig

    config = ServiceConfig(backend=args.backend, precision=args.precision)
    registry, name = _registry_for(args.dir, config=config)
    service = IdentificationService(registry=registry, config=config)
    try:
        gallery = registry.get(name)
        recipe = gallery.metadata.get("dataset")
        if not recipe:
            print("gallery carries no dataset recipe; cannot synthesize probes",
                  file=sys.stderr)
            return 1
        dataset = _gallery_dataset(recipe)
        probes = dataset.generate_session(recipe["task"], encoding="RL", day=2)
        response = None
        if args.codec is not None:
            # Wire mode: the same identify, routed through an ephemeral HTTP
            # server in the chosen codec — the response is bit-identical to
            # the in-process path (docs/protocol.md).
            from repro.service.http import BackgroundHttpServer, ServiceClient

            with BackgroundHttpServer(service, port=0) as background:
                with ServiceClient(
                    port=background.port, codec=args.codec
                ) as wire_client:
                    for _ in range(args.repeat):
                        response = wire_client.identify(gallery=name, scans=probes)
            print(f"identified over HTTP ({args.codec} codec)")
        else:
            for _ in range(args.repeat):
                response = service.identify(IdentifyRequest(gallery=name, scans=probes))
        if not response.ok:
            print(f"identify failed: {response.error}", file=sys.stderr)
            return 1
        print(
            f"identified {response.n_probes} probes against "
            f"{response.n_gallery_subjects} enrolled subjects "
            f"(backend: {gallery.backend})"
        )
        pruning = service.stats().pruning.get(name)
        if pruning is not None:
            print(
                f"candidates scanned      : {pruning['candidates_scanned']} of "
                f"{pruning['columns_considered']} gallery columns "
                f"(pruning ratio {pruning['pruning_ratio']:.3f})"
            )
        print(f"identification accuracy : {100.0 * response.accuracy:.1f} %")
        margins = response.margins
        print(f"mean confidence margin  : {sum(margins) / len(margins):.3f}")
        stats = service.cache.stats("group_matrix")
        probe_stats = service.cache.stats("probe")
        print(
            f"group-matrix cache      : {stats.hits} hits / {stats.misses} misses "
            f"over {args.repeat} identify call(s)"
        )
        print(
            f"probe-signature cache   : {probe_stats.hits} hits / "
            f"{probe_stats.misses} misses"
        )
        return 0
    finally:
        service.close()


def _command_gallery_info(args) -> int:
    registry, name = _registry_for(args.dir)
    try:
        gallery = registry.get(name)
        info = gallery.info()
        cache_dir = gallery.cache.cache_dir
        print(f"subjects enrolled   : {info['n_subjects']}")
        print(
            "signature features  : "
            f"{info['n_features_selected']} of {info['n_features_total']}"
        )
        print(f"svd backend         : {info['method']} (rank={info['rank']})")
        print(f"matching backend    : {info['backend'] or 'numpy64 (default)'}")
        print(f"shard size          : {info['shard_size'] or '(single block)'}")
        index = info.get("index")
        if index is None:
            print("pruning index       : (none; build with --index or serve "
                  "--precision indexed)")
        else:
            counters = index.get("counters", {})
            print(
                f"pruning index       : rank={index['rank']} "
                f"top_c={index['top_c']} method={index['method']} "
                f"cumulative ratio={counters.get('pruning_ratio', 0.0):.3f}"
            )
        print(f"fingerprint         : {info['fingerprint']}")
        print(f"disk cache tier     : {cache_dir if cache_dir is not None else '(memory only)'}")
        _print_cache_kinds(
            gallery.cache,
            ("gallery", "gallery_norm", "leverage", "svd", "group_matrix",
             "probe", "index"),
        )
        return 0
    finally:
        registry.close()


def _command_serve(args) -> int:
    from repro.exceptions import ReproError

    try:
        return _serve(args)
    except ReproError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1


def _serve(args) -> int:
    import json as _json

    from repro.service import IdentificationService, ServiceConfig

    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = _json.loads(Path(args.fault_plan).read_text())
        except OSError as exc:
            print(f"serve failed: cannot read fault plan: {exc}", file=sys.stderr)
            return 1
        except _json.JSONDecodeError as exc:
            print(
                f"serve failed: fault plan {args.fault_plan} is not valid JSON: {exc}",
                file=sys.stderr,
            )
            return 1
    overrides = {}
    if args.request_deadline is not None:
        overrides["request_deadline_s"] = args.request_deadline
    if args.drain_deadline is not None:
        overrides["drain_deadline_s"] = args.drain_deadline
    if args.admin_token is not None:
        overrides["admin_token"] = args.admin_token
    config = ServiceConfig(
        max_batch_size=args.max_batch,
        batch_window_s=args.window,
        backend=args.backend,
        precision=args.precision,
        max_workers=args.workers,
        executor=args.executor,
        http_host=args.host,
        http_port=args.http if args.http is not None else 8035,
        codec=args.codec,
        router_workers=max(0, args.router_workers),
        fault_plan=fault_plan,
        **overrides,
    )
    if fault_plan is not None:
        rules = len(fault_plan.get("rules", []))
        print(f"fault injection: {rules} rule(s) loaded from {args.fault_plan}")
    if config.router_workers > 0:
        # Routed mode: one GalleryRouter over the parent of --dir; every
        # gallery under that root is servable, dispatched by name across
        # the worker fleet.
        from repro.exceptions import ValidationError
        from repro.service import GalleryRouter

        directory = Path(args.dir)
        root = directory.parent if str(directory.parent) else Path(".")
        name = directory.name
        router = GalleryRouter(root, config=config)
        try:
            if name not in router.registry:
                raise ValidationError(
                    f"no saved gallery named {name!r} under {root} "
                    "(routed serving loads from disk; build it first)"
                )
            if args.http is not None:
                return _serve_http(router, name, rescale_file=args.rescale_file)
            return _serve_rounds(router, name, args)
        finally:
            # Drains every worker (each releases its own pool and /dev/shm
            # segments before the router joins it).
            router.close()
    registry, name = _registry_for(args.dir, config=config)
    service = IdentificationService(registry=registry, config=config)
    # Everything below must release the runner pool and /dev/shm segments on
    # every exit path — early returns and mid-round ReproErrors included.
    try:
        if args.http is not None:
            return _serve_http(service, name)
        return _serve_rounds(service, name, args)
    finally:
        service.close()


def _serve_rounds(service, name, args) -> int:
    """Synthetic-load mode: N concurrent requests, R rounds, one event loop.

    All rounds run inside a single ``asyncio.run`` so round 2+ reuses the
    event loop — and therefore the per-loop micro-batcher — it claims to be
    measuring warm.  (One loop per round would create a fresh batcher each
    time; ``ServiceStats.batchers`` staying at 1 is the observable proof of
    reuse.)
    """
    import asyncio

    from repro.service import IdentifyRequest

    routed = not hasattr(service.registry, "get")
    if routed:
        # The router never loads galleries in this process; the persisted
        # metadata on disk carries the dataset recipe.
        import json as _json

        meta_path = Path(service.root) / name / "gallery.json"
        saved = _json.loads(meta_path.read_text())
        recipe = (saved.get("metadata") or {}).get("dataset")
        backend_label = service.config.backend or "numpy64 (default)"
    else:
        gallery = service.registry.get(name)
        recipe = gallery.metadata.get("dataset")
        backend_label = gallery.backend
    if not recipe:
        print("gallery carries no dataset recipe; cannot synthesize probes",
              file=sys.stderr)
        return 1
    dataset = _gallery_dataset(recipe)
    probes = dataset.generate_session(recipe["task"], encoding="RL", day=2)
    n_requests = min(args.requests, len(probes))
    groups = [probes[i::n_requests] for i in range(n_requests)]

    async def serve_rounds():
        last = []
        for round_index in range(args.rounds):
            requests = [IdentifyRequest(gallery=name, scans=group) for group in groups]
            start = time.perf_counter()
            last = await asyncio.gather(
                *(service.identify_async(request) for request in requests)
            )
            elapsed = time.perf_counter() - start
            label = "cold" if round_index == 0 else "warm"
            print(
                f"round {round_index + 1} ({label}): served {len(last)} "
                f"concurrent requests in {1e3 * elapsed:.1f} ms "
                f"(max coalesced batch: {max(r.batch_size for r in last)})"
            )
        return last, service.stats()

    responses, stats = asyncio.run(serve_rounds())
    if stats.batchers != 1 and not routed:
        print(
            f"warning: {stats.batchers} micro-batchers were live after "
            f"{args.rounds} rounds (expected 1: warm rounds should reuse "
            "the same event loop's batcher)",
            file=sys.stderr,
        )
    failed = [response for response in responses if not response.ok]
    for response in failed:
        print(f"{response.request_id} failed: {response.error}", file=sys.stderr)
    n_correct = sum(
        predicted == actual
        for response in responses
        if response.ok
        for predicted, actual in zip(
            response.predicted_subject_ids, response.target_subject_ids
        )
    )
    n_probes = sum(response.n_probes for response in responses if response.ok)
    if n_probes:
        print(f"identification accuracy : {100.0 * n_correct / n_probes:.1f} %")
    print(f"matching backend        : {backend_label}")
    print()
    for line in stats.summary_lines():
        print(line)
    return 1 if failed else 0


def _apply_rescale(router, path) -> None:
    """Bring the fleet to the worker count ``path`` holds (SIGHUP handler).

    The file carries one integer — the *target* fleet size; workers are
    added or removed one at a time until the membership matches.  A
    missing, unreadable, or non-integer file is logged and ignored (a
    stray SIGHUP must never tear the fleet down), as is a racing resize.
    """
    from repro.exceptions import ReproError

    try:
        target = int(Path(path).read_text().strip())
    except (OSError, ValueError) as exc:
        print(f"rescale ignored: cannot read a fleet size from {path}: {exc}",
              flush=True)
        return
    if target < 1:
        print(f"rescale ignored: target fleet size must be >= 1, got {target}",
              flush=True)
        return
    try:
        while len(router.workers) < target:
            record = router.add_worker()
            print(
                f"rescale: added {record['worker']} "
                f"({record['members_after']} workers, "
                f"{record['remapped_galleries']} galleries remapped, "
                f"{record['warmed']} warmed)",
                flush=True,
            )
        while len(router.workers) > target:
            record = router.remove_worker()
            drained = "drained" if record["drained"] else "killed after drain failure"
            print(
                f"rescale: removed {record['worker']} "
                f"({record['members_after']} workers, {drained} "
                f"in {record['drain_s']:.2f}s)",
                flush=True,
            )
    except ReproError as exc:
        print(f"rescale stopped: {exc}", flush=True)


def _serve_http(service, name, rescale_file=None) -> int:
    """HTTP mode: serve the gallery until SIGINT/SIGTERM, then drain."""
    import asyncio
    import signal

    from repro.service.http import HttpServiceServer

    if hasattr(service.registry, "get"):
        service.registry.get(name)  # fail fast on a missing/corrupt gallery

    async def run_server():
        server = HttpServiceServer(service)
        await server.start()
        host, port = server.address
        print(f"serving gallery {name!r} on http://{host}:{port}", flush=True)
        print("endpoints: POST /identify  POST /enroll  GET /stats  GET /healthz",
              flush=True)
        from repro.service.codec import CONTENT_TYPE_BINARY, CONTENT_TYPE_JSON

        advertised = (
            CONTENT_TYPE_BINARY if service.config.codec == "binary" else CONTENT_TYPE_JSON
        )
        print(
            f"codecs: {CONTENT_TYPE_JSON} (default)  {CONTENT_TYPE_BINARY}  "
            f"[advertised: {advertised}]",
            flush=True,
        )
        workers = getattr(service, "workers", None)
        if workers is not None:
            # Routed mode: surface the fleet shape and who holds what.
            health = service.healthz()
            print(
                f"router: {len(workers)} worker process(es), "
                f"ring size {service.ring_size} "
                f"({service.config.ring_replicas} virtual nodes per worker)",
                flush=True,
            )
            for worker_name in workers:
                entry = health["workers"].get(worker_name, {})
                resident = ", ".join(entry.get("resident") or ()) or "(none resident)"
                print(
                    f"  - {worker_name} (pid {entry.get('pid')}): {resident}",
                    flush=True,
                )
            if service.config.admin_token:
                print("admin: POST /admin/workers enabled (bearer token)", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.stop)
            except NotImplementedError:  # pragma: no cover - non-Unix loop
                signal.signal(signum, lambda *_: server.stop())
        if workers is not None and hasattr(signal, "SIGHUP"):
            # Live rescale: SIGHUP re-reads the target fleet size and
            # resizes off the event loop (a resize spawns/drains worker
            # processes; the loop keeps serving meanwhile).
            rescale_path = (
                Path(rescale_file) if rescale_file
                else Path(service.root) / "fleet-size"
            )

            def _on_sighup() -> None:
                loop.run_in_executor(None, _apply_rescale, service, rescale_path)

            try:
                loop.add_signal_handler(signal.SIGHUP, _on_sighup)
                print(
                    f"rescale: SIGHUP re-reads the target fleet size "
                    f"from {rescale_path}",
                    flush=True,
                )
            except NotImplementedError:  # pragma: no cover - non-Unix loop
                pass
        await server.serve_forever()
        print("shutdown: in-flight batches drained", flush=True)
        return server.requests_served

    served = asyncio.run(run_server())
    print(f"requests served over HTTP: {served}")
    for line in service.stats().summary_lines():
        print(line)
    return 0


def _command_gallery(args) -> int:
    from repro.exceptions import ReproError

    commands = {
        "build": _command_gallery_build,
        "enroll": _command_gallery_enroll,
        "identify": _command_gallery_identify,
        "info": _command_gallery_info,
    }
    try:
        return commands[args.gallery_command](args)
    except ReproError as exc:
        # Missing/tampered gallery directories and the like: a clean message
        # and exit 1, matching the other commands' failure style.
        print(f"gallery {args.gallery_command} failed: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-attack`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "gallery":
        return _command_gallery(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "runtime-info":
        return _command_runtime_info(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
