"""Tests for sketch-quality diagnostics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.leverage import principal_features
from repro.linalg.sampling import RowSampler
from repro.linalg.sketch import (
    gram_approximation_error,
    low_rank_approximation,
    projection_reconstruction_error,
    sketch_quality_report,
)


class TestGramError:
    def test_zero_for_identical(self, tall_matrix):
        assert gram_approximation_error(tall_matrix, tall_matrix) == pytest.approx(0.0)

    def test_relative_vs_absolute(self, tall_matrix, rng):
        sketch = tall_matrix[rng.choice(tall_matrix.shape[0], 50, replace=False), :]
        relative = gram_approximation_error(tall_matrix, sketch, relative=True)
        absolute = gram_approximation_error(tall_matrix, sketch, relative=False)
        assert absolute > relative

    def test_column_mismatch_raises(self, tall_matrix):
        with pytest.raises(ValidationError):
            gram_approximation_error(tall_matrix, tall_matrix[:, :3])


class TestLowRankApproximation:
    def test_rank_one_of_rank_one_matrix_is_exact(self, rng):
        matrix = np.outer(rng.standard_normal(20), rng.standard_normal(5))
        approx = low_rank_approximation(matrix, rank=1)
        np.testing.assert_allclose(approx, matrix, atol=1e-10)

    def test_error_decreases_with_rank(self, tall_matrix):
        errors = [
            np.linalg.norm(tall_matrix - low_rank_approximation(tall_matrix, rank=k))
            for k in (1, 3, 5)
        ]
        assert errors[0] >= errors[1] >= errors[2]

    def test_rank_too_large_raises(self, tall_matrix):
        with pytest.raises(ValidationError):
            low_rank_approximation(tall_matrix, rank=100)


class TestProjectionError:
    def test_full_row_set_gives_zero_error(self, tall_matrix):
        error = projection_reconstruction_error(
            tall_matrix, np.arange(tall_matrix.shape[0])
        )
        assert error == pytest.approx(0.0, abs=1e-8)

    def test_leverage_rows_give_small_relative_error(self, tall_matrix):
        top = principal_features(tall_matrix, n_features=10)
        error = projection_reconstruction_error(tall_matrix, top)
        assert error < 0.2

    def test_out_of_range_indices_raise(self, tall_matrix):
        with pytest.raises(ValidationError):
            projection_reconstruction_error(tall_matrix, np.array([10**6]))

    def test_empty_indices_raise(self, tall_matrix):
        with pytest.raises(ValidationError):
            projection_reconstruction_error(tall_matrix, np.array([], dtype=int))


class TestReport:
    def test_report_keys(self, tall_matrix):
        sampler = RowSampler(n_rows=30, distribution="l2", random_state=0)
        sketch = sampler.fit_sample(tall_matrix)
        report = sketch_quality_report(tall_matrix, sketch, sampler.sampled_indices_)
        for key in (
            "gram_relative_error",
            "gram_absolute_error",
            "compression_ratio",
            "projection_relative_error",
        ):
            assert key in report
        assert report["compression_ratio"] == pytest.approx(tall_matrix.shape[0] / 30)
