"""Tests for repro.embedding.pca."""

import numpy as np
import pytest

from repro.embedding.pca import PCA
from repro.exceptions import NotFittedError, ValidationError


class TestPCA:
    def test_explained_variance_ratio_sums_to_one_with_full_components(self, rng):
        data = rng.standard_normal((40, 6))
        pca = PCA().fit(data)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_components_are_orthonormal(self, rng):
        data = rng.standard_normal((50, 8))
        pca = PCA(n_components=4).fit(data)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_transform_shape(self, rng):
        data = rng.standard_normal((30, 10))
        projected = PCA(n_components=3).fit_transform(data)
        assert projected.shape == (30, 3)

    def test_reconstruction_of_low_rank_data(self, rng):
        latent = rng.standard_normal((60, 2))
        mixing = rng.standard_normal((2, 7))
        data = latent @ mixing
        pca = PCA(n_components=2).fit(data)
        reconstructed = pca.inverse_transform(pca.transform(data))
        np.testing.assert_allclose(reconstructed, data, atol=1e-8)

    def test_variance_ordering(self, rng):
        data = rng.standard_normal((100, 5)) * np.array([5.0, 3.0, 1.0, 0.5, 0.1])
        pca = PCA().fit(data)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-12)

    def test_first_component_aligns_with_dominant_direction(self, rng):
        direction = np.array([1.0, 0.0, 0.0, 0.0])
        data = rng.standard_normal((200, 1)) * 10.0 @ direction[None, :]
        data += 0.1 * rng.standard_normal((200, 4))
        pca = PCA(n_components=1).fit(data)
        alignment = abs(float(pca.components_[0] @ direction))
        assert alignment > 0.99

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            PCA(n_components=2).transform(rng.standard_normal((5, 3)))

    def test_feature_mismatch_raises(self, rng):
        pca = PCA(n_components=2).fit(rng.standard_normal((20, 6)))
        with pytest.raises(ValidationError):
            pca.transform(rng.standard_normal((5, 4)))

    def test_too_many_components_raises(self, rng):
        with pytest.raises(ValidationError):
            PCA(n_components=10).fit(rng.standard_normal((5, 4)))

    def test_invalid_component_count_rejected(self):
        with pytest.raises(ValidationError):
            PCA(n_components=0)
