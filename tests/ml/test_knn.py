"""Tests for the k-nearest-neighbour classifier."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.knn import KNeighborsClassifier


def _labelled_blobs(rng, n=20, dims=4, separation=8.0):
    a = rng.standard_normal((n, dims))
    b = rng.standard_normal((n, dims)) + separation
    features = np.vstack([a, b])
    labels = np.array(["left"] * n + ["right"] * n)
    return features, labels


class TestKNN:
    def test_perfect_on_separated_blobs(self, rng):
        features, labels = _labelled_blobs(rng)
        model = KNeighborsClassifier(n_neighbors=1).fit(features, labels)
        predictions = model.predict(features + 0.01)
        assert np.all(predictions == labels)

    def test_majority_vote_with_k3(self, rng):
        features = np.array([[0.0], [0.1], [0.2], [5.0]])
        labels = np.array(["a", "a", "b", "b"])
        model = KNeighborsClassifier(n_neighbors=3).fit(features, labels)
        assert model.predict(np.array([[0.05]]))[0] == "a"

    def test_correlation_metric(self, rng):
        # Correlation distance is scale-invariant: a scaled copy of a training
        # pattern must match the original perfectly.
        features = rng.standard_normal((10, 20))
        labels = np.arange(10).astype(str)
        model = KNeighborsClassifier(n_neighbors=1, metric="correlation").fit(features, labels)
        predictions = model.predict(features * 5.0 + 2.0)
        np.testing.assert_array_equal(predictions, labels)

    def test_kneighbors_indices(self, rng):
        features, labels = _labelled_blobs(rng, n=5)
        model = KNeighborsClassifier(n_neighbors=2).fit(features, labels)
        neighbours = model.kneighbors(features[:3])
        assert neighbours.shape == (3, 2)
        # Each point's nearest neighbour (when querying the training data
        # itself) is the point itself.
        np.testing.assert_array_equal(neighbours[:, 0], np.arange(3))

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(rng.standard_normal((2, 3)))

    def test_too_many_neighbours_raises(self, rng):
        with pytest.raises(ValidationError):
            KNeighborsClassifier(n_neighbors=10).fit(rng.standard_normal((3, 2)), [1, 2, 3])

    def test_feature_mismatch_raises(self, rng):
        model = KNeighborsClassifier().fit(rng.standard_normal((5, 4)), list("abcde"))
        with pytest.raises(ValidationError):
            model.predict(rng.standard_normal((2, 3)))

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValidationError):
            KNeighborsClassifier(metric="cosine")
