"""Tests for the low-rank reconstruction defense."""

import numpy as np
import pytest

from repro.attack.deanonymize import LeverageScoreAttack
from repro.defense.reconstruction import LowRankReconstructionDefense
from repro.exceptions import ValidationError
from repro.utils.stats import pearson_correlation


class TestLowRankReconstructionDefense:
    def test_output_shape_and_metadata(self, rest_group):
        defense = LowRankReconstructionDefense(n_components=4)
        protected = defense.protect(rest_group)
        assert protected.data.shape == rest_group.data.shape
        assert protected.subject_ids == rest_group.subject_ids

    def test_reduces_attack_accuracy(self, rest_pair):
        attack = LeverageScoreAttack(n_features=100).fit(rest_pair["reference"])
        baseline = attack.identify(rest_pair["target"]).accuracy()
        defense = LowRankReconstructionDefense(n_components=2)
        protected = defense.protect(rest_pair["target"])
        protected_accuracy = attack.identify(protected).accuracy()
        assert protected_accuracy < baseline

    def test_preserves_group_mean(self, rest_group):
        defense = LowRankReconstructionDefense(n_components=3)
        protected = defense.protect(rest_group)
        correlation = pearson_correlation(
            rest_group.data.mean(axis=1), protected.data.mean(axis=1)
        )
        assert correlation > 0.99

    def test_residual_fraction_one_is_identity(self, rest_group):
        defense = LowRankReconstructionDefense(n_components=3, residual_fraction=1.0)
        protected = defense.protect(rest_group)
        np.testing.assert_allclose(protected.data, rest_group.data, atol=1e-8)

    def test_more_residual_means_more_identifiable(self, rest_pair):
        attack = LeverageScoreAttack(n_features=100).fit(rest_pair["reference"])
        accuracies = []
        for fraction in (0.0, 1.0):
            defense = LowRankReconstructionDefense(n_components=2, residual_fraction=fraction)
            protected = defense.protect(rest_pair["target"])
            accuracies.append(attack.identify(protected).accuracy())
        assert accuracies[0] <= accuracies[1]

    def test_explained_variance_recorded(self, rest_group):
        defense = LowRankReconstructionDefense(n_components=3)
        defense.protect(rest_group)
        assert defense.explained_variance_ratio_.shape == (3,)

    def test_invalid_parameters_rejected(self, rest_group):
        with pytest.raises(ValidationError):
            LowRankReconstructionDefense(n_components=10**6).protect(rest_group)
        with pytest.raises(ValidationError):
            LowRankReconstructionDefense(residual_fraction=1.5).protect(rest_group)
