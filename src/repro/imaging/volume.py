"""4-D functional image container.

A functional MRI is a 4-D image: three spatial dimensions plus time (paper
Section 3.1).  :class:`Volume4D` is a thin, validated wrapper around the raw
array together with the acquisition repetition time (TR) and an affine that
maps voxel indices to scanner/world coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError


@dataclass
class Volume4D:
    """A 4-D functional image (x, y, z, t) with acquisition metadata.

    Parameters
    ----------
    data:
        Array of shape ``(nx, ny, nz, nt)``.
    tr:
        Repetition time in seconds (0.72 s for HCP resting-state).
    affine:
        4x4 voxel-to-world affine; defaults to the identity.
    subject_id:
        Optional provenance metadata carried through preprocessing.
    session / task:
        Optional provenance metadata.
    """

    data: np.ndarray
    tr: float = 0.72
    affine: Optional[np.ndarray] = None
    subject_id: Optional[str] = None
    session: Optional[str] = None
    task: Optional[str] = None

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 4:
            raise ValidationError(
                f"Volume4D data must be 4-dimensional, got shape {self.data.shape}"
            )
        if min(self.data.shape) < 1:
            raise ValidationError("Volume4D data must have positive extent on every axis")
        if self.tr <= 0:
            raise ValidationError(f"tr must be positive, got {self.tr}")
        if self.affine is None:
            self.affine = np.eye(4)
        else:
            self.affine = np.asarray(self.affine, dtype=np.float64)
            if self.affine.shape != (4, 4):
                raise ValidationError(
                    f"affine must be a 4x4 matrix, got shape {self.affine.shape}"
                )

    # ------------------------------------------------------------------ #
    # Shape helpers
    # ------------------------------------------------------------------ #
    @property
    def spatial_shape(self) -> Tuple[int, int, int]:
        """Spatial extent ``(nx, ny, nz)``."""
        return self.data.shape[:3]

    @property
    def n_timepoints(self) -> int:
        """Number of temporal frames."""
        return self.data.shape[3]

    @property
    def n_voxels(self) -> int:
        """Total number of voxels per frame."""
        nx, ny, nz = self.spatial_shape
        return nx * ny * nz

    @property
    def duration(self) -> float:
        """Total acquisition duration in seconds."""
        return self.n_timepoints * self.tr

    # ------------------------------------------------------------------ #
    # Views and simple transformations
    # ------------------------------------------------------------------ #
    def frame(self, index: int) -> np.ndarray:
        """Return the 3-D volume at time ``index``."""
        if not 0 <= index < self.n_timepoints:
            raise ValidationError(
                f"frame index {index} out of range [0, {self.n_timepoints})"
            )
        return self.data[..., index]

    def mean_image(self) -> np.ndarray:
        """Temporal mean image (used as the registration/bias reference)."""
        return self.data.mean(axis=3)

    def to_timeseries(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Flatten to a ``(n_voxels_in_mask, n_timepoints)`` matrix.

        Parameters
        ----------
        mask:
            Optional boolean 3-D mask; defaults to all voxels.
        """
        if mask is None:
            return self.data.reshape(-1, self.n_timepoints)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.spatial_shape:
            raise ValidationError(
                f"mask shape {mask.shape} does not match spatial shape "
                f"{self.spatial_shape}"
            )
        return self.data[mask, :]

    def with_data(self, data: np.ndarray) -> "Volume4D":
        """Return a copy carrying the same metadata but new voxel data."""
        return Volume4D(
            data=data,
            tr=self.tr,
            affine=self.affine.copy(),
            subject_id=self.subject_id,
            session=self.session,
            task=self.task,
        )

    def copy(self) -> "Volume4D":
        """Deep copy of the volume."""
        return self.with_data(self.data.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Volume4D(shape={self.data.shape}, tr={self.tr}, "
            f"subject={self.subject_id!r}, task={self.task!r})"
        )
