"""Fleet control plane: membership, worker lifecycle, and live resizing.

:class:`~repro.service.router.GalleryRouter` used to fuse two very different
jobs into one ~900-line class: deciding *who serves which gallery* (ring
membership, worker spawn/reap/respawn, breaker bookkeeping, stats
carry-forward) and actually *serving requests* (frame → dispatch → retry).
Following the control-plane/data-plane split of adaptive query processing —
topology decisions live apart from the tuple-at-a-time execution path — this
module owns the control plane:

``HashRing``
    Deterministic consistent-hash placement (sha256 virtual nodes).  Adding
    or removing one member remaps only the ring arcs its virtual nodes own,
    ≈ ``1/N`` of the key space.
``FleetControlPlane``
    The runtime-mutable fleet object: it spawns/reaps/respawns worker
    processes, keeps the per-worker breaker registry
    (:class:`~repro.service.resilience.BreakerRegistry`), folds dead
    incarnations' stats snapshots into carried accumulators (global *and*
    per worker, so ``/stats`` totals never double-count or regress), and —
    the point of the split — implements **live membership changes**:

    ``add_worker()``
        spawn off-ring → *warm* the joining worker (prefetch the gallery
        names the prospective ring assigns to it, via the worker ``warm``
        op) → commit the ring change.  Until the commit nothing routes to
        the newcomer, so a failed join aborts without a trace.
    ``remove_worker()``
        commit the shrunken ring **first** (new lookups route to survivors)
        → *drain* the leaving worker (its in-flight request finishes under
        the data-channel lock, the ``drain`` op persists resident galleries
        and returns a final stats snapshot that is folded into the carried
        accumulator) → join the cleanly-exiting process (SIGKILL escalation
        + ``/dev/shm`` sweep only if the drain failed) → retire the breaker.

    One resize runs at a time (:class:`ResizeInProgress` otherwise), and
    identifies issued during a resize stay bit-identical to single-process
    serving: every worker serves the same persisted galleries through the
    same kernel, so remapping a name only changes *where* it is computed.
    Both protocols **write-fence** the remapped galleries — they hold those
    galleries' single-writer locks (the same locks the data plane's enroll
    holds across its worker round-trip) from before the warm (join) or
    commit (leave) until after the commit.  Acquiring the fence waits out
    any in-flight enroll to a remapped gallery (acked ⇒ persisted) and
    blocks new ones until the ring change lands, so a warmed resident copy
    on the newcomer — or a survivor's first lazy load — can never be
    invalidated by a write that was still racing toward the old owner.

The data plane (``GalleryRouter``) keeps the request path: it routes through
:meth:`FleetControlPlane.route`, borrows handles via
:meth:`FleetControlPlane.handle_for`, and reports failures back through
:meth:`FleetControlPlane.on_worker_death`.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.exceptions import ValidationError
from repro.runtime.shm import SEGMENT_PREFIX
from repro.service.config import ServiceConfig
from repro.service.codec import FrameError
from repro.service.registry import _GALLERY_META_FILE
from repro.service.resilience import BreakerRegistry, ResiliencePolicy
from repro.service.worker import recv_message, send_message, worker_main

PathLike = Union[str, Path]

#: Where POSIX shared-memory segments surface on Linux (the crash sweep
#: removes a dead worker's ``repro-shm-<pid>-*`` entries from here).
_SHM_DIR = Path("/dev/shm")

#: How many completed resize records ``/stats`` keeps (newest last).
_RESIZE_HISTORY = 32

#: How many remapped/warmed gallery names a resize record lists verbatim
#: (the full counts are always recorded; the name lists are a sample).
_RESIZE_NAME_SAMPLE = 32


# --------------------------------------------------------------------------- #
# Consistent-hash ring
# --------------------------------------------------------------------------- #
class HashRing:
    """A consistent-hash ring with virtual nodes.

    Placement is a pure function of the member and key strings (sha256), so
    every router process — and every restart — routes a gallery name to the
    same worker.  ``replicas`` virtual nodes per member smooth the spread;
    adding or removing a member only remaps the ring arcs its virtual nodes
    own (≈ ``1/N`` of the key space), which is what keeps per-worker gallery
    residency warm across fleet resizes.
    """

    def __init__(self, members: Sequence[str] = (), replicas: int = 64):
        if int(replicas) < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._members: set = set()
        self._points: List[tuple] = []
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def members(self) -> List[str]:
        """Sorted member names currently on the ring."""
        return sorted(self._members)

    def __len__(self) -> int:
        """Number of virtual nodes (``members * replicas``)."""
        return len(self._points)

    def add(self, member: str) -> None:
        """Add a member (idempotent); inserts its virtual nodes."""
        if not isinstance(member, str) or not member:
            raise ValidationError("ring member must be a non-empty string")
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self.replicas):
            bisect.insort(self._points, (self._hash(f"{member}#{replica}"), member))

    def remove(self, member: str) -> None:
        """Remove a member and its virtual nodes (idempotent)."""
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [point for point in self._points if point[1] != member]

    def lookup(self, key: str) -> str:
        """The member owning ``key``: first virtual node clockwise of its hash."""
        if not self._points:
            raise ValidationError("the hash ring has no members")
        # (h,) sorts before any (h, member), so bisect_left finds the first
        # virtual node at or clockwise of the key's position.
        index = bisect.bisect_left(self._points, (self._hash(str(key)),))
        return self._points[index % len(self._points)][1]


# --------------------------------------------------------------------------- #
# Failures and handles
# --------------------------------------------------------------------------- #
class WorkerDied(Exception):
    """An IPC operation failed because the worker process or channel died."""


class WorkerHung(WorkerDied):
    """A data-channel read hit its deadline: the worker is stuck, not gone.

    Handled exactly like a death (reap → respawn → retry), except the reap
    goes straight to SIGKILL — a hung worker cannot notice its closed
    channel ends, so the graceful join would burn the whole escalation
    ladder before giving up.
    """


class WorkerRetired(WorkerDied):
    """The worker drained out of the fleet before the request was sent.

    Raised by the pre-send liveness check only, so the caller *knows* the
    operation never reached the worker: identify re-routes to the new owner
    on its next attempt, and enroll surfaces a typed error that is safe to
    resend (no write occurred).
    """


class ResizeInProgress(ValidationError):
    """A membership change is already in flight; one resize runs at a time."""


class WorkerHandle:
    """One live worker incarnation: process + data/control channels."""

    __slots__ = (
        "name", "process", "pid", "data_sock", "control_sock",
        "data_lock", "control_lock", "alive", "retired", "incarnation",
    )

    def __init__(self, name, process, data_sock, control_sock, incarnation=0):
        self.name = name
        self.process = process
        self.pid = process.pid
        self.data_sock = data_sock
        self.control_sock = control_sock
        self.data_lock = threading.Lock()
        self.control_lock = threading.Lock()
        self.alive = True
        #: Set at ring-commit time by ``remove_worker``: the handle may still
        #: finish pre-commit in-flight requests, but once drained it raises
        #: :class:`WorkerRetired` instead of being respawned.
        self.retired = False
        self.incarnation = incarnation


#: ServiceStats counter fields that simply sum across workers.
_SUM_FIELDS = ("requests", "probes", "batches", "coalesced_batches", "errors", "batchers")

#: Derived ratios recomputed after merging (summing them would be wrong).
_DERIVED_KEYS = ("pruning_ratio", "hit_rate", "mean_batch_size")


def _empty_accumulator() -> Dict[str, Any]:
    acc: Dict[str, Any] = {field: 0 for field in _SUM_FIELDS}
    acc["max_batch_size"] = 0
    acc["galleries"] = {}
    acc["pruning"] = {}
    acc["cache_kinds"] = {}
    return acc


def _merge_record(acc: Dict[str, Any], record: Optional[Dict[str, Any]]) -> None:
    """Fold one worker stats document (``ServiceStats.to_dict``) into ``acc``."""
    if not record:
        return
    for field in _SUM_FIELDS:
        acc[field] += int(record.get(field, 0))
    acc["max_batch_size"] = max(acc["max_batch_size"], int(record.get("max_batch_size", 0)))
    for name, count in (record.get("galleries") or {}).items():
        acc["galleries"][name] = acc["galleries"].get(name, 0) + int(count)
    for group in ("pruning", "cache_kinds"):
        for name, counters in (record.get(group) or {}).items():
            entry = acc[group].setdefault(name, {})
            for key, value in counters.items():
                if key in _DERIVED_KEYS:
                    continue
                entry[key] = entry.get(key, 0) + value


def _empty_worker_carried() -> Dict[str, int]:
    return {"requests": 0, "errors": 0, "auto_evictions": 0}


class GalleryRootView:
    """Name-only registry surface over the shared gallery root.

    The HTTP front end only asks its service's registry two questions —
    ``names()`` and membership — and in routed mode the shared root on disk
    is the source of truth (workers persist every create/enroll before
    acknowledging), so this view answers both from the filesystem without
    talking to any worker.  The control plane reuses it to enumerate the
    names a prospective ring change would remap.
    """

    def __init__(self, root: Path):
        self._root = Path(root)

    def names(self) -> List[str]:
        if not self._root.exists():
            return []
        return sorted(
            path.name
            for path in self._root.iterdir()
            if path.is_dir() and (path / _GALLERY_META_FILE).exists()
        )

    def __contains__(self, name: str) -> bool:
        if not isinstance(name, str) or not name or "/" in name or "\\" in name:
            return False
        if name in (".", ".."):
            return False
        return (self._root / name / _GALLERY_META_FILE).exists()

    def __len__(self) -> int:
        return len(self.names())


# --------------------------------------------------------------------------- #
# The control plane
# --------------------------------------------------------------------------- #
class FleetControlPlane:
    """Membership, lifecycle, and accounting of a router worker fleet.

    Parameters
    ----------
    root:
        Shared gallery root directory (workers load lazily from it and
        persist writes back into it).
    config:
        Deployment knobs; the config handed to workers always has
        ``router_workers=0`` — a worker is a plain single-process service.
        ``warm_on_add`` and ``drain_deadline_s`` steer the resize protocol.
    workers:
        Initial fleet size (>= 1); members are named ``worker-0`` …
        ``worker-N-1``.  Workers added later get fresh monotonic indices, so
        a departed member's ring arcs are never silently re-created.
    control_timeout_s:
        Socket timeout of control-channel operations (ping/stats/warm).
    """

    def __init__(
        self,
        root: PathLike,
        config: ServiceConfig,
        workers: int,
        control_timeout_s: float = 30.0,
    ):
        count = int(workers)
        if count < 1:
            raise ValidationError(
                f"the fleet needs at least one worker, got {count} "
                "(set router_workers >= 1 or pass workers=)"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.control_timeout_s = float(control_timeout_s)
        self.policy = ResiliencePolicy.from_config(config)
        self.registry = GalleryRootView(self.root)
        self._max_message_bytes = int(config.max_stream_bytes)
        self._worker_config = config.replace(router_workers=0).to_dict()
        # fork keeps spawn latency negligible and inherits the already-built
        # socketpair ends; spawns are serialized under the fleet lock so a
        # child can never inherit a sibling's not-yet-closed worker-side fd.
        self._mp = multiprocessing.get_context("fork")
        self._ring = HashRing(
            [f"worker-{index}" for index in range(count)],
            replicas=config.ring_replicas,
        )
        self._lock = threading.RLock()
        self._close_lock = threading.Lock()
        #: Per-gallery single-writer locks.  The data plane's enroll holds
        #: one across owner resolution *and* the worker round-trip, which is
        #: what lets a resize use them as a **write fence**: once a resize
        #: holds a gallery's lock, no write to it is in flight anywhere in
        #: the fleet, and none can start until the lock is released.
        self._writer_registry_lock = threading.Lock()
        self._writer_locks: Dict[str, threading.Lock] = {}
        #: Totals of every dead or removed worker incarnation (their last
        #: known stats snapshots), so aggregate stats never double-count a
        #: respawn and never regress when a member leaves the fleet.
        self._carried = _empty_accumulator()
        #: Per-worker carry of that worker's *own* dead incarnations, so the
        #: ``per_worker`` stats block never regresses across respawns and
        #: never omits a member whose poll failed this cycle.
        self._worker_carried: Dict[str, Dict[str, int]] = {}
        #: Per-worker last successful stats poll of the *current* incarnation.
        self._last_stats: Dict[str, Dict[str, Any]] = {}
        self._respawns = 0
        self._worker_timeouts = 0
        #: Recent worker-death reasons (newest last) — the observable record
        #: of *why* arcs failed, surfaced through ``stats().router``.
        self._deaths: deque = deque(maxlen=32)
        #: Per-worker consecutive-failure breakers, keyed by worker name and
        #: tagged with the incarnation they guard; retired when the worker
        #: leaves the fleet.
        self.breakers = BreakerRegistry(threshold=self.policy.breaker_threshold)
        self._closed = False
        self._handles: Dict[str, WorkerHandle] = {}
        #: Monotonic spawn index: ``add_worker`` names are never reused.
        self._next_index = count
        #: One membership change at a time; admin requests racing an
        #: in-flight resize get a typed 409 instead of queueing.
        self._resize_mutex = threading.Lock()
        self._resize_inflight: Optional[str] = None
        self._resize_history: deque = deque(maxlen=_RESIZE_HISTORY)
        self._resizes_completed = 0
        with self._lock:
            for name in self._ring.members:
                self.breakers.ensure(name)
                self._handles[name] = self._spawn(name)

    # ------------------------------------------------------------------ #
    # Membership queries
    # ------------------------------------------------------------------ #
    @property
    def members(self) -> List[str]:
        """Sorted worker names currently on the ring."""
        with self._lock:
            return self._ring.members

    @property
    def ring_size(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def closed(self) -> bool:
        return self._closed

    def route(self, gallery: str) -> str:
        """The worker name the ring assigns to ``gallery``."""
        with self._lock:
            return self._ring.lookup(gallery)

    def placement(self, keys: Sequence[str]) -> Dict[str, str]:
        """A consistent snapshot of ``{key: owner}`` under the fleet lock."""
        with self._lock:
            return {key: self._ring.lookup(key) for key in keys}

    def alive_count(self) -> int:
        with self._lock:
            return sum(
                1
                for name in self._ring.members
                if (handle := self._handles.get(name)) is not None
                and handle.alive
                and handle.process.is_alive()
            )

    def breaker(self, worker: str):
        """The consecutive-failure breaker guarding ``worker``'s arc."""
        return self.breakers.ensure(worker)

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, name: str) -> WorkerHandle:
        """Fork one worker (caller holds the fleet lock)."""
        data_router, data_worker = socket.socketpair()
        control_router, control_worker = socket.socketpair()
        process = self._mp.Process(
            target=worker_main,
            args=(data_worker, control_worker, self._worker_config, str(self.root), name),
            name=f"repro-router-{name}",
            daemon=True,
        )
        process.start()
        # The parent's copies of the worker-side ends must close immediately:
        # the worker process must be the only holder, so its death surfaces
        # as EOF/EPIPE on the router's ends.
        data_worker.close()
        control_worker.close()
        return WorkerHandle(
            name, process, data_router, control_router,
            incarnation=self.breakers.incarnation(name),
        )

    def handle_for(self, name: str) -> WorkerHandle:
        """The live handle of ``name``; respawns a silently-dead member."""
        with self._lock:
            handle = self._handles.get(name)
            if handle is None:
                raise WorkerRetired(f"{name} is no longer a fleet member")
            if handle.alive and handle.process.is_alive():
                return handle
        self.on_worker_death(handle)
        with self._lock:
            handle = self._handles.get(name)
            if handle is None or not handle.alive:
                raise WorkerRetired(f"{name} left the fleet")
            return handle

    def on_worker_death(
        self, handle: WorkerHandle, hung: bool = False, reason: Optional[str] = None
    ) -> None:
        """Reap, account, sweep, and respawn one dead incarnation (idempotent)."""
        with self._lock:
            if self._handles.get(handle.name) is not handle or not handle.alive:
                return  # another thread already replaced this incarnation
            handle.alive = False
            if self._closed:
                return  # close() owns the remaining cleanup
            if handle.retired:
                return  # remove_worker() owns the drain/reap of a retired member
            if hung:
                self._worker_timeouts += 1
            self._deaths.append(
                f"{handle.name} (pid {handle.pid}): {reason or 'channel failure'}"
            )
            # Counters of the dead incarnation: its last polled snapshot is
            # folded exactly once — into the global carry *and* the worker's
            # own carry (so per_worker never regresses) — anything accrued
            # after that poll died with the process and is honestly lost.
            self._fold_snapshot(handle.name, self._last_stats.pop(handle.name, None))
            self._respawns += 1
            self.breakers.bump_incarnation(handle.name)
            # Always SIGKILL on the failure path: the incarnation is
            # untrusted (dead, hung, or speaking garbage), so there is
            # nothing worth draining — and a still-alive worker cannot be
            # EOF'd anyway, because siblings forked later inherit duplicate
            # copies of its router-side channel fds, which would stall the
            # graceful join until its timeout expires.
            self._reap(handle, kill_first=True)
            self._handles[handle.name] = self._spawn(handle.name)

    def _fold_snapshot(self, name: str, record: Optional[Dict[str, Any]]) -> None:
        """Fold a dead incarnation's snapshot into both carried accumulators."""
        _merge_record(self._carried, record)
        entry = self._worker_carried.setdefault(name, _empty_worker_carried())
        if record:
            entry["requests"] += int(record.get("requests", 0))
            entry["errors"] += int(record.get("errors", 0))
            entry["auto_evictions"] += int(
                (record.get("registry") or {}).get("auto_evictions", 0)
            )

    def _reap(self, handle: WorkerHandle, kill_first: bool = False) -> None:
        """Close channels, join (escalating to kill), sweep leaked segments."""
        for sock in (handle.data_sock, handle.control_sock):
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        process = handle.process
        if kill_first and process.is_alive():
            # A hung (or SIGSTOPped) worker cannot notice its closed channel
            # ends — and even a responsive one may never see EOF, since
            # sibling workers hold inherited copies of these fds — so
            # waiting out the graceful join would stall failover far past
            # the deadline; SIGKILL works even on a stopped process.  Only
            # acked shutdown/drain ops are joined gracefully.
            process.kill()
        process.join(timeout=10.0)
        if process.is_alive():  # pragma: no cover - wedged worker
            process.terminate()
            process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - unkillable worker
            process.kill()
            process.join(timeout=5.0)
        self._sweep_segments(handle.pid)

    @staticmethod
    def _sweep_segments(pid: Optional[int]) -> int:
        """Unlink ``/dev/shm`` segments a killed worker pid left behind.

        A cleanly-draining worker releases its own segments before exiting;
        this sweep covers SIGKILL (no finalizers ran in the worker).  Segment
        names embed the creating pid, so the sweep can never touch another
        process's segments.
        """
        if pid is None or not _SHM_DIR.exists():
            return 0
        swept = 0
        for path in _SHM_DIR.glob(f"{SEGMENT_PREFIX}-{int(pid)}-*"):
            try:
                path.unlink()
                swept += 1
            except OSError:  # pragma: no cover - raced with another cleaner
                pass
        return swept

    # ------------------------------------------------------------------ #
    # Resize IPC (warm / drain — control-plane ops, never retried)
    # ------------------------------------------------------------------ #
    def _warm_call(self, handle: WorkerHandle, names: Sequence[str]) -> Dict[str, Any]:
        """Ask a (not-yet-committed) worker to prefetch its joining arc."""
        with handle.control_lock:
            if not handle.alive:
                raise WorkerDied("worker died before warm")
            try:
                handle.control_sock.settimeout(self.control_timeout_s)
                send_message(
                    handle.control_sock,
                    {"kind": "warm", "scans": [], "names": list(names)},
                )
                message = recv_message(handle.control_sock, self._max_message_bytes)
            except socket.timeout as exc:
                raise WorkerHung(
                    f"no warm reply within the {self.control_timeout_s}s control timeout"
                ) from exc
            except (OSError, FrameError) as exc:
                raise WorkerDied(str(exc)) from exc
        if message is None:
            raise WorkerDied("worker closed the control channel during warm")
        reply = message[0]
        if not reply.get("ok", False):
            raise WorkerDied(f"warm failed: {reply.get('error')}")
        document = reply.get("document")
        return document if isinstance(document, dict) else {}

    def _drain_call(self, handle: WorkerHandle, deadline_s: float) -> Dict[str, Any]:
        """Drain one leaving worker on its data channel.

        Taking the data lock waits out the in-flight request; the worker
        then persists its resident galleries, replies with a final stats
        snapshot, and exits its serve loop.  The handle is marked dead under
        the same lock, so any later data call sees :class:`WorkerRetired`
        *before* sending — the caller knows its operation never happened.
        """
        with handle.data_lock:
            if not handle.alive:
                raise WorkerDied("worker died before drain")
            try:
                handle.data_sock.settimeout(float(deadline_s))
                send_message(handle.data_sock, {"kind": "drain", "scans": []})
                message = recv_message(handle.data_sock, self._max_message_bytes)
            except socket.timeout as exc:
                raise WorkerHung(
                    f"no drain reply within the {deadline_s}s drain deadline"
                ) from exc
            except (OSError, FrameError) as exc:
                raise WorkerDied(str(exc)) from exc
            finally:
                handle.alive = False
        if message is None:
            raise WorkerDied("worker closed the data channel during drain")
        reply = message[0]
        if not reply.get("ok", False):
            raise WorkerDied(f"drain failed: {reply.get('error')}")
        document = reply.get("document")
        return document if isinstance(document, dict) else {}

    # ------------------------------------------------------------------ #
    # Single-writer locks and the resize write fence
    # ------------------------------------------------------------------ #
    def writer_lock(self, gallery: str) -> threading.Lock:
        """The per-gallery single-writer lock (shared with the data plane)."""
        with self._writer_registry_lock:
            lock = self._writer_locks.get(gallery)
            if lock is None:
                lock = self._writer_locks.setdefault(gallery, threading.Lock())
            return lock

    def _acquire_write_fence(self, remapped) -> Dict[str, threading.Lock]:
        """Acquire the writer locks of every gallery the resize remaps.

        ``remapped`` is a callable listing the persisted gallery names whose
        owner the pending membership change moves.  Acquiring their writer
        locks waits out any in-flight enroll to those galleries (enroll
        holds the lock across its worker round-trip) and blocks new ones,
        so while the fence is held the shared root is the *complete* state
        of every remapped gallery: a warm prefetch or a survivor's first
        lazy load after the commit can never capture a resident copy that
        a still-in-flight write would silently invalidate.

        The acquisition loops to a fixed point: a gallery persisted for the
        first time while the fence was being assembled (its creating enroll
        raced the resize) is picked up on the next pass.  A creating enroll
        still unpersisted when the fence converges is benign — the new
        owner cannot load a gallery that is not on disk yet, so its first
        successful serve reads the post-enroll state.

        Locks are acquired in sorted name order; the only multi-lock
        acquirer is a resize and resizes are serialized, so the order can
        never deadlock against single-lock enrolls.  The caller must not
        hold the fleet lock (enroll takes writer lock → fleet lock; the
        fence must follow the same order).
        """
        held: Dict[str, threading.Lock] = {}
        while True:
            missing = [name for name in sorted(remapped()) if name not in held]
            if not missing:
                return held
            for name in missing:
                lock = self.writer_lock(name)
                lock.acquire()
                held[name] = lock

    @staticmethod
    def _release_write_fence(held: Dict[str, threading.Lock]) -> None:
        for lock in reversed(list(held.values())):
            lock.release()

    # ------------------------------------------------------------------ #
    # Live membership changes
    # ------------------------------------------------------------------ #
    def add_worker(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Grow the fleet by one worker: spawn → warm → commit.

        The new worker is spawned *off-ring* (nothing routes to it), warmed
        by prefetching the gallery names the prospective ring assigns to it
        (skippable via ``config.warm_on_add``), and only then committed —
        the ring mutation is atomic under the fleet lock, so a lookup sees
        either the old ring or the new one, never an in-between.  The
        joining arc is **write-fenced** across the warm+commit window: the
        remapped galleries' writer locks are held, so an enroll routed to
        the old owner either lands (durably, on disk) before the newcomer
        loads the gallery, or blocks and re-routes to the newcomer after
        the commit — a warmed resident copy can never go silently stale.
        A failed spawn or warm aborts the join and reaps the newcomer; the
        serving fleet is untouched.
        """
        self._check_open()
        if not self._resize_mutex.acquire(blocking=False):
            raise ResizeInProgress(
                f"a fleet resize is already in flight ({self._resize_inflight}); "
                "retry after it completes"
            )
        try:
            started = time.perf_counter()
            with self._lock:
                if name is None:
                    # An operator may have added an explicit "worker-N" name
                    # ahead of the monotonic index: skip past collisions so
                    # an auto name can never overwrite a live handle.
                    name = f"worker-{self._next_index}"
                    while name in self._ring._members or name in self._handles:
                        self._next_index += 1
                        name = f"worker-{self._next_index}"
                    self._next_index += 1
                elif name in self._ring._members or name in self._handles:
                    raise ValidationError(f"worker {name!r} is already a fleet member")
                self._resize_inflight = f"add {name}"
                members_before = self._ring.members
            # The joining arc, computed against a prospective ring: these are
            # the only names whose owner changes when the commit lands.
            prospective = HashRing(
                members_before + [name], replicas=self._ring.replicas
            )
            fence = self._acquire_write_fence(
                lambda: [
                    gallery for gallery in self.registry.names()
                    if prospective.lookup(gallery) == name
                ]
            )
            try:
                joining = sorted(fence)
                with self._lock:
                    handle = self._spawn(name)
                warm_document: Dict[str, Any] = {}
                if self.config.warm_on_add and joining:
                    try:
                        warm_document = self._warm_call(handle, joining)
                    except WorkerDied as exc:
                        handle.alive = False
                        self._reap(handle, kill_first=True)
                        raise ValidationError(
                            f"join of {name} aborted: warm prefetch failed ({exc}); "
                            "the serving fleet is unchanged"
                        ) from exc
                with self._lock:
                    self._ring.add(name)
                    self._handles[name] = handle
                    self.breakers.ensure(name)
                    members_after = self._ring.members
            finally:
                self._release_write_fence(fence)
            record = {
                "action": "add",
                "worker": name,
                "members_before": len(members_before),
                "members_after": len(members_after),
                "remapped_galleries": len(joining),
                "remapped_sample": joining[:_RESIZE_NAME_SAMPLE],
                "warmed": len(warm_document.get("warmed", [])),
                "warm_failed": len(warm_document.get("failed", {})),
                "duration_s": time.perf_counter() - started,
            }
            with self._lock:
                self._resize_history.append(record)
                self._resizes_completed += 1
            return dict(record)
        finally:
            self._resize_inflight = None
            self._resize_mutex.release()

    def remove_worker(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Shrink the fleet by one worker: commit → drain → reap → retire.

        The shrunken ring commits **first** — new lookups route to the
        survivors — with the leaving arc **write-fenced** across the
        commit: the remapped galleries' writer locks are held, so every
        enroll the old owner acknowledged is on disk before the commit
        point, and a survivor's first lazy load after the commit reads the
        complete state.  Then the leaving worker drains: its in-flight request
        finishes (the data lock serializes), the ``drain`` op persists
        resident galleries and returns a final stats snapshot folded into
        the carried accumulator (fleet totals never regress), and the
        process is reaped with the SIGKILL-escalation ladder + ``/dev/shm``
        sweep.  Its breaker is retired from the active registry.  A drain
        that misses ``config.drain_deadline_s`` falls back to the crash
        path: the worker is killed and its last *polled* snapshot is carried
        instead (anything unpolled died with it — counted never twice).
        """
        self._check_open()
        if not self._resize_mutex.acquire(blocking=False):
            raise ResizeInProgress(
                f"a fleet resize is already in flight ({self._resize_inflight}); "
                "retry after it completes"
            )
        try:
            started = time.perf_counter()
            with self._lock:
                members_before = self._ring.members
                if len(members_before) <= 1:
                    raise ValidationError(
                        "cannot remove the last worker; the fleet needs at least one"
                    )
                if name is None:
                    # Highest spawn index leaves first ("worker-10" after
                    # "worker-9": compare by length before lexicographic).
                    name = max(members_before, key=lambda m: (len(m), m))
                if name not in members_before:
                    raise ValidationError(
                        f"worker {name!r} is not a fleet member "
                        f"(members: {members_before})"
                    )
                self._resize_inflight = f"remove {name}"
            # Fence the leaving arc, then commit: acquiring the writer locks
            # waits out in-flight enrolls to the remapped galleries (acked ⇒
            # persisted), so the disk state a survivor lazy-loads after the
            # commit can never miss a write the old owner acknowledged.
            fence = self._acquire_write_fence(
                lambda: [
                    gallery for gallery in self.registry.names()
                    if self.route(gallery) == name
                ]
            )
            try:
                leaving = sorted(fence)
                with self._lock:
                    # Commit: from here on every new lookup routes to a
                    # survivor, so the drain below only has to wait out
                    # requests that were already in flight.
                    self._ring.remove(name)
                    handle = self._handles[name]
                    handle.retired = True
                    members_after = self._ring.members
            finally:
                self._release_write_fence(fence)
            drain_started = time.perf_counter()
            drained = False
            drain_error: Optional[str] = None
            final_stats: Optional[Dict[str, Any]] = None
            try:
                document = self._drain_call(handle, self.config.drain_deadline_s)
                stats = document.get("stats")
                final_stats = stats if isinstance(stats, dict) else None
                drained = True
            except WorkerDied as exc:
                drain_error = str(exc)
            drain_s = time.perf_counter() - drain_started
            with self._lock:
                last = self._last_stats.pop(name, None)
                # A clean drain returns the complete final snapshot; fold it
                # (not the stale poll) so removal never drops counters.  A
                # failed drain degrades to the crash rule: carry the last
                # polled snapshot, never double-count.
                _merge_record(self._carried, final_stats if drained else last)
                self._worker_carried.pop(name, None)
                self._handles.pop(name, None)
                if not drained:
                    self._deaths.append(
                        f"{name} (pid {handle.pid}): drain failed ({drain_error})"
                    )
            # An acked drain means the worker is already exiting its serve
            # loop on its own (pool shutdown, finalizers, segment release):
            # join it gracefully.  Only a failed drain — dead, hung, or
            # deadline miss — goes straight to SIGKILL + sweep.
            self._reap(handle, kill_first=not drained)
            retired_breaker = self.breakers.retire(name)
            record = {
                "action": "remove",
                "worker": name,
                "members_before": len(members_before),
                "members_after": len(members_after),
                "remapped_galleries": len(leaving),
                "remapped_sample": leaving[:_RESIZE_NAME_SAMPLE],
                "drained": drained,
                "drain_s": drain_s,
                "drain_error": drain_error,
                "breaker_retired": retired_breaker is not None,
                "duration_s": time.perf_counter() - started,
            }
            with self._lock:
                self._resize_history.append(record)
                self._resizes_completed += 1
            return dict(record)
        finally:
            self._resize_inflight = None
            self._resize_mutex.release()

    # ------------------------------------------------------------------ #
    # Accounting (what /stats reports)
    # ------------------------------------------------------------------ #
    def note_stats(self, name: str, record: Dict[str, Any]) -> None:
        """Remember the latest successful stats poll of ``name``.

        A poll racing a removal is dropped: re-inserting a departed
        member's snapshot after ``remove_worker`` purged it would leak the
        entry — and double-count the dead incarnation if the same name is
        later re-added and crashes.
        """
        with self._lock:
            handle = self._handles.get(name)
            if handle is None or handle.retired:
                return
            self._last_stats[name] = record

    def accumulate(self, records: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
        """Global totals: the carried accumulator plus this cycle's polls."""
        with self._lock:
            acc = _empty_accumulator()
            _merge_record(acc, self._carried)
        for record in records.values():
            _merge_record(acc, record)
        return acc

    def per_worker(self, records: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
        """The ``per_worker`` stats block: every member, never a regression.

        Each entry sums the member's carried totals (dead incarnations)
        with its freshest snapshot — this cycle's poll when it succeeded,
        the last successful poll otherwise (``stale: true``) — and carries
        the worker-registry residency detail (resident gallery names,
        ``auto_evictions``, the TTL/LRU bounds) alongside the counters.
        """
        with self._lock:
            block: Dict[str, Any] = {}
            for name in self._ring.members:
                live = records.get(name)
                snapshot = live if live is not None else self._last_stats.get(name)
                carried = self._worker_carried.get(name, _empty_worker_carried())
                detail = (snapshot or {}).get("registry") or {}
                resident = list(detail.get("resident", []))
                block[name] = {
                    "requests": carried["requests"]
                    + int((snapshot or {}).get("requests", 0)),
                    "errors": carried["errors"]
                    + int((snapshot or {}).get("errors", 0)),
                    "resident_galleries": len(resident),
                    "resident": resident,
                    "auto_evictions": carried["auto_evictions"]
                    + int(detail.get("auto_evictions", 0)),
                    "max_galleries": detail.get("max_galleries"),
                    "ttl_seconds": detail.get("ttl_seconds"),
                    "incarnation": self.breakers.incarnation(name),
                    "stale": live is None,
                }
            return block

    def resizes(self) -> Dict[str, Any]:
        """The ``resizes`` stats block: in-flight marker + bounded history."""
        with self._lock:
            return {
                "in_flight": self._resize_inflight,
                "completed": self._resizes_completed,
                "history": [dict(record) for record in self._resize_history],
            }

    @property
    def respawns(self) -> int:
        with self._lock:
            return self._respawns

    @property
    def worker_timeouts(self) -> int:
        with self._lock:
            return self._worker_timeouts

    @property
    def deaths(self) -> List[str]:
        with self._lock:
            return list(self._deaths)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("the router is closed")

    def close(self) -> None:
        """Drain and stop every worker (idempotent).

        Each worker is drained in turn — its in-flight request finishes
        (the data lock serializes), the ``shutdown`` op is acknowledged,
        and the process is joined, which releases that worker's runner pool
        and ``/dev/shm`` segments before the channel ends close.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            with handle.data_lock, handle.control_lock:
                if handle.alive and handle.process.is_alive():
                    try:
                        handle.data_sock.settimeout(self.control_timeout_s)
                        send_message(handle.data_sock, {"kind": "shutdown", "scans": []})
                        recv_message(handle.data_sock, self._max_message_bytes)
                    except (OSError, FrameError, socket.timeout):
                        pass  # already dying; the reap below handles it
                handle.alive = False
                self._reap(handle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetControlPlane(root={str(self.root)!r}, "
            f"members={self.members}, closed={self._closed})"
        )


__all__ = [
    "FleetControlPlane",
    "GalleryRootView",
    "HashRing",
    "ResizeInProgress",
    "WorkerDied",
    "WorkerHandle",
    "WorkerHung",
    "WorkerRetired",
]
