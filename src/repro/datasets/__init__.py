"""Synthetic dataset generators standing in for HCP and ADHD-200.

The real Human Connectome Project and ADHD-200 releases cannot ship with this
reproduction, so this subpackage provides generative models that plant the
statistical structure the paper's attack exploits:

* every subject carries a stable, session-invariant connectivity fingerprint,
* tasks modulate connectivity in a task-specific, subject-shared way,
* task performance couples into the connectome,
* clinical cohorts add subtype- and site-specific structure, and
* multi-site acquisition adds scanner noise to one session.

See DESIGN.md for the substitution argument.
"""

from repro.datasets.base import ScanRecord, CohortDataset
from repro.datasets.tasks import (
    HCP_TASKS,
    TaskDefinition,
    default_hcp_task_battery,
    get_task,
)
from repro.datasets.subject import SubjectModel, SubjectPopulation
from repro.datasets.hcp import HCPLikeDataset
from repro.datasets.adhd200 import ADHD200LikeDataset, ADHD_SUBTYPES
from repro.datasets.multisite import add_multisite_noise, simulate_multisite_session

__all__ = [
    "ScanRecord",
    "CohortDataset",
    "TaskDefinition",
    "HCP_TASKS",
    "default_hcp_task_battery",
    "get_task",
    "SubjectModel",
    "SubjectPopulation",
    "HCPLikeDataset",
    "ADHD200LikeDataset",
    "ADHD_SUBTYPES",
    "add_multisite_noise",
    "simulate_multisite_session",
]
